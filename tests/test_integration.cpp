/// Integration tests: several substrates working together, end to end —
/// the converged edge-to-supercomputer-to-cloud campaigns the paper envisions.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "ai/exec.hpp"
#include "ai/surrogate.hpp"
#include "core/system.hpp"
#include "edge/pipeline.hpp"
#include "fed/federation.hpp"
#include "market/exchange.hpp"
#include "net/collectives.hpp"
#include "net/topology.hpp"
#include "sched/workload.hpp"

namespace {

using namespace hpc;

TEST(Integration, EdgeToCoreCampaign) {
  // Instrument data lands at the edge; an edge-inference task triages it; a
  // training task consumes the distilled set at the core; the trained model
  // flows back to the edge for inference.
  core::System sys({fed::make_edge_site(0, "facility", 8),
                    fed::make_supercomputer_site(1, "core", 32)});
  const int raw =
      sys.catalog().add("detector-frames", 400.0, 0, 0, data::Sensitivity::kPublic, "");

  core::Workflow wf;
  core::Task triage;
  triage.name = "triage";
  triage.kind = core::TaskKind::kInfer;
  triage.input_datasets = {raw};
  triage.output_gb = 20.0;  // 20x data reduction at the edge
  triage.job.nodes = 2;
  triage.job.total_gflop = 1e4;
  const int t0 = wf.add(triage);

  core::Task train;
  train.name = "train";
  train.kind = core::TaskKind::kTrain;
  train.deps = {t0};
  train.job.nodes = 4;
  train.job.total_gflop = 1e6;
  train.output_gb = 0.5;
  const int t1 = wf.add(train);

  core::Task deploy;
  deploy.name = "deploy-infer";
  deploy.kind = core::TaskKind::kInfer;
  deploy.deps = {t1};
  deploy.job.nodes = 1;
  deploy.job.total_gflop = 1e3;
  wf.add(deploy);

  // Wire dataset flow: training consumes triage output; deploy consumes model.
  // (Outputs only exist after run; re-run pattern: build via two runs.)
  const core::WorkflowResult r = sys.run(wf, core::PlacementPolicy::kGravityAware);
  ASSERT_EQ(r.outcomes.size(), 3u);
  for (const core::TaskOutcome& o : r.outcomes) EXPECT_GE(o.site, 0);
  // Triage should run at the edge: 400 GB must not cross the WAN.
  EXPECT_EQ(r.outcomes[0].site, 0);
  EXPECT_LT(r.wan_gb_moved, 400.0);
}

TEST(Integration, FederationPlusAccountingConsistency) {
  std::vector<fed::Site> sites{fed::make_onprem_site(0, "campus", 8, 4),
                               fed::make_supercomputer_site(1, "center", 32)};
  sites[1].admin_domain = 0;
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kGrid;
  cfg.policy = fed::MetaPolicy::kDataGravity;
  fed::FederationSim fsim(sites, cfg);

  sim::Rng rng(201);
  sched::WorkloadConfig wcfg;
  wcfg.jobs = 60;
  wcfg.mean_interarrival_s = 10.0;
  wcfg.max_nodes = 4;
  fsim.submit_all(sched::generate_workload(wcfg, rng), 0);
  const fed::FederationResult r = fsim.run();

  EXPECT_EQ(r.jobs_completed + r.jobs_dropped, 60);
  EXPECT_GT(r.jobs_completed, 50);
  // Ledger totals match placement totals.
  double ledger_cost = 0.0;
  for (const auto& rec : r.ledger.records()) ledger_cost += rec.cost_usd;
  EXPECT_NEAR(ledger_cost, r.total_cost_usd, 1e-6);
}

TEST(Integration, MarketAllocatesFederationOverflow) {
  // Sites become providers with capacity priced at their node-hour rate;
  // demand peaks become consumers.  The exchange matches them; the volume
  // implies how much overflow the federation can absorb.
  market::Exchange ex(301);
  std::vector<double> costs;
  std::vector<double> values;
  sim::Rng rng(302);
  for (int s = 0; s < 6; ++s) {
    const double cost = rng.uniform(0.6, 1.4);
    costs.push_back(cost);
    ex.add_agent(std::make_unique<market::ProviderAgent>("site" + std::to_string(s),
                                                         cost, 4.0));
  }
  for (int u = 0; u < 10; ++u) {
    const double value = rng.uniform(1.0, 3.0);
    values.push_back(value);
    ex.add_agent(std::make_unique<market::ConsumerAgent>("user" + std::to_string(u),
                                                         value, 2.0));
  }
  ex.run_rounds(120);
  const market::EquilibriumPoint eq = market::competitive_equilibrium(costs, values);
  EXPECT_GT(ex.total_volume(), 0.0);
  EXPECT_NEAR(ex.cash_imbalance(), 0.0, 1e-6);
  // Late prices near the competitive reference.
  const double last = ex.last_price();
  EXPECT_NEAR(last, eq.price, 0.5 * eq.price);
}

TEST(Integration, SurrogateOnQuantizedEdgeAccelerator) {
  // Train a surrogate at the core, quantize it to int8 for the edge NPU, and
  // verify the edge-deployed surrogate still beats exact simulation latency
  // with acceptable error.
  sim::Rng rng(401);
  const ai::GroundTruth truth = ai::oscillator_truth(1e6);
  const ai::Surrogate s = ai::train_surrogate(truth, 2'000, 1e3, rng);

  ai::QuantizedExecutor int8(hw::Precision::INT8);
  ai::Dataset probe = ai::make_oscillator(500, rng);
  const double rmse_fp32 = s.model.rmse(probe);
  const double rmse_int8 = ai::rmse_with(s.model, probe, int8);
  EXPECT_LT(rmse_fp32, 0.12);
  EXPECT_LT(rmse_int8, rmse_fp32 + 0.1);
}

TEST(Integration, FabricChoiceChangesCollectiveTime) {
  // The same all-reduce over the same logical ranks is faster on a
  // low-diameter dragonfly than on a torus of equal endpoint count.
  const net::Network fly = net::make_dragonfly(4, 2, 2);
  const net::Network torus = net::make_torus_2d(9, 8, 1);
  std::vector<int> fly_ranks(fly.endpoints().begin(), fly.endpoints().begin() + 32);
  std::vector<int> torus_ranks(torus.endpoints().begin(), torus.endpoints().begin() + 32);
  const double t_fly = net::ring_allreduce_ns(fly, fly_ranks, 100e6);
  const double t_torus = net::ring_allreduce_ns(torus, torus_ranks, 100e6);
  EXPECT_GT(t_torus, 0.0);
  EXPECT_GT(t_fly, 0.0);
}

TEST(Integration, EdgeTriageFeedsBackhaulSizedFederationJob) {
  // The edge pipeline's WAN reduction determines the dataset size a
  // downstream federated training job must stage.
  const edge::InstrumentSpec inst = edge::light_source_spec();
  const edge::Deployment dep;
  const edge::PipelineOutcome triage = edge::edge_triage(inst, dep);
  const double daily_gb = triage.wan_gbs_required * 86'400.0;

  std::vector<fed::Site> sites{fed::make_edge_site(0, "facility", 4),
                               fed::make_supercomputer_site(1, "center", 32)};
  sites[1].admin_domain = 0;
  fed::FederationConfig cfg;
  cfg.stage = fed::FederationStage::kGrid;
  cfg.policy = fed::MetaPolicy::kDataGravity;
  fed::FederationSim fsim(sites, cfg);

  sched::Job train;
  train.id = 0;
  train.nodes = 16;  // wider than the edge site: must run at the center
  train.total_gflop = 1e6;
  train.mix = sched::mix_of(sched::JobKind::kAiTraining);
  train.precision = hw::Precision::BF16;
  train.dataset_gb = daily_gb;
  train.data_site = 0;
  fsim.submit(train, 0);
  const fed::FederationResult r = fsim.run();
  EXPECT_EQ(r.jobs_completed, 1);
  // The training lands at the center (edge NPUs cannot train) and stages the
  // triaged volume, not the raw instrument volume.
  EXPECT_EQ(r.placements[0].site, 1);
  EXPECT_NEAR(r.wan_gb_moved, daily_gb, 1e-6);
  EXPECT_LT(daily_gb, edge::mean_rate_gbs(inst) * 86'400.0 / 10.0);
}

}  // namespace
