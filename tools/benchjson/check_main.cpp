#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchjson.hpp"

/// \file check_main.cpp
/// benchjson_check CLI: validates, merges, and compares archipelago-bench-v1
/// files (BENCH_*.json perf baselines and campaign cell aggregates).
///
///     benchjson_check [--min-iters N] FILE...
///     benchjson_check --merge OUT FILE...
///     benchjson_check --compare BASELINE CURRENT [--tolerance PCT]
///
/// Validate mode: by default every entry must have run >= 3 iterations —
/// single-iteration rows are noise-level measurements that have already
/// produced a bogus baseline delta once (BENCH_obs.json's "+17% disabled
/// probes" artifact).  `--min-iters 1` remains the explicit opt-out for
/// suites whose slowest rows are genuinely single-shot.
///
/// Merge mode: concatenates several suites into one file (bench name
/// "merged"); row names must stay unique across inputs.
///
/// Compare mode: diffs two files row by row.  Both must contain exactly the
/// same row names; any row whose ns/op moved more than PCT percent fails.
/// `--tolerance 0` (the default) demands exact equality — what campaign
/// cell aggregates use, since those are deterministic simulated quantities,
/// not wall-clock noise (ci/check.sh stage [8/8] gates on it).
///
/// Exit status: 0 on success, 1 on the first invalid/mismatching file, 2 on
/// usage error.

namespace {

constexpr char kUsage[] =
    "usage: benchjson_check [--min-iters N] FILE...\n"
    "       benchjson_check --merge OUT FILE...\n"
    "       benchjson_check --compare BASELINE CURRENT [--tolerance PCT]\n";

int run_merge(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::vector<std::string> inputs;
  for (int i = 3; i < argc; ++i) inputs.emplace_back(argv[i]);
  const std::string error = hpc::benchjson::merge_files(inputs, argv[2], "merged");
  if (!error.empty()) {
    std::fprintf(stderr, "benchjson_check: merge: %s\n", error.c_str());
    return 1;
  }
  std::printf("benchjson_check: merged %zu file(s) into %s\n", inputs.size(), argv[2]);
  return 0;
}

int run_compare(int argc, char** argv) {
  if (argc != 4 && argc != 6) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  double tolerance = 0.0;
  if (argc == 6) {
    if (std::string(argv[4]) != "--tolerance") {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    char* end = nullptr;
    tolerance = std::strtod(argv[5], &end);
    if (end == argv[5] || *end != '\0' || tolerance < 0.0) {
      std::fprintf(stderr, "benchjson_check: --tolerance must be a non-negative number\n");
      return 2;
    }
  }
  std::vector<hpc::benchjson::CompareRow> rows;
  const std::string error =
      hpc::benchjson::compare_files(argv[2], argv[3], tolerance, rows);
  for (const hpc::benchjson::CompareRow& row : rows)
    std::printf("benchjson_check: %-48s %12.3f -> %12.3f  %+.2f%%\n",
                row.name.c_str(), row.baseline_ns, row.current_ns, row.delta_pct);
  if (!error.empty()) {
    std::fprintf(stderr, "benchjson_check: compare: %s\n", error.c_str());
    return 1;
  }
  std::printf("benchjson_check: %s vs %s: %zu row(s) within %.2f%%\n", argv[2],
              argv[3], rows.size(), tolerance);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--merge") return run_merge(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "--compare") return run_compare(argc, argv);

  std::int64_t min_iters = 3;
  int first_file = 1;
  if (argc >= 2 && std::string(argv[1]) == "--min-iters") {
    if (argc < 4) {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    min_iters = 0;
    for (const char* p = argv[2]; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9') {
        std::fprintf(stderr, "benchjson_check: --min-iters must be a positive integer\n");
        return 2;
      }
      min_iters = min_iters * 10 + (*p - '0');
    }
    if (min_iters < 1) {
      std::fprintf(stderr, "benchjson_check: --min-iters must be >= 1\n");
      return 2;
    }
    first_file = 3;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  for (int i = first_file; i < argc; ++i) {
    const std::string error = hpc::benchjson::validate_file(argv[i], min_iters);
    if (!error.empty()) {
      std::fprintf(stderr, "benchjson_check: %s: %s\n", argv[i], error.c_str());
      return 1;
    }
    std::printf("benchjson_check: %s: ok (min-iters %lld)\n", argv[i],
                static_cast<long long>(min_iters));
  }
  return 0;
}
