#include <cstdint>
#include <cstdio>
#include <string>

#include "benchjson.hpp"

/// \file check_main.cpp
/// benchjson_check CLI: validates BENCH_*.json perf-baseline files.
///
///     benchjson_check [--min-iters N] FILE...
///
/// By default every entry must have run >= 3 iterations: single-iteration
/// rows are noise-level measurements that have already produced a bogus
/// baseline delta once (BENCH_obs.json's "+17% disabled probes" artifact).
/// `--min-iters 1` is the explicit opt-out for suites whose slowest rows are
/// genuinely single-shot (e.g. the 0.5 s/op flowsim none_minimal rows) —
/// their numbers are trajectory hints, not gates, and ROADMAP says so.
///
/// Exit status: 0 if every file parses and satisfies the
/// archipelago-bench-v1 schema, 1 on the first invalid file, 2 on usage
/// error.  ci/check.sh stage [5/7] runs this on the freshly emitted
/// BENCH_*.json files so a broken emitter can never publish a baseline.

int main(int argc, char** argv) {
  std::int64_t min_iters = 3;
  int first_file = 1;
  if (argc >= 2 && std::string(argv[1]) == "--min-iters") {
    if (argc < 4) {
      std::fprintf(stderr, "usage: benchjson_check [--min-iters N] FILE...\n");
      return 2;
    }
    min_iters = 0;
    for (const char* p = argv[2]; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9') {
        std::fprintf(stderr, "benchjson_check: --min-iters must be a positive integer\n");
        return 2;
      }
      min_iters = min_iters * 10 + (*p - '0');
    }
    if (min_iters < 1) {
      std::fprintf(stderr, "benchjson_check: --min-iters must be >= 1\n");
      return 2;
    }
    first_file = 3;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: benchjson_check [--min-iters N] FILE...\n");
    return 2;
  }
  for (int i = first_file; i < argc; ++i) {
    const std::string error = hpc::benchjson::validate_file(argv[i], min_iters);
    if (!error.empty()) {
      std::fprintf(stderr, "benchjson_check: %s: %s\n", argv[i], error.c_str());
      return 1;
    }
    std::printf("benchjson_check: %s: ok (min-iters %lld)\n", argv[i],
                static_cast<long long>(min_iters));
  }
  return 0;
}
