#include <cstdio>
#include <string>

#include "benchjson.hpp"

/// \file check_main.cpp
/// benchjson_check CLI: validates BENCH_*.json perf-baseline files.
///
///     benchjson_check FILE...
///
/// Exit status: 0 if every file parses and satisfies the
/// archipelago-bench-v1 schema, 1 on the first invalid file, 2 on usage
/// error.  ci/check.sh stage [5/5] runs this on the freshly emitted
/// BENCH_flowsim.json so a broken emitter can never publish a baseline.

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: benchjson_check FILE...\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string error = hpc::benchjson::validate_file(argv[i]);
    if (!error.empty()) {
      std::fprintf(stderr, "benchjson_check: %s: %s\n", argv[i], error.c_str());
      return 1;
    }
    std::printf("benchjson_check: %s: ok\n", argv[i]);
  }
  return 0;
}
