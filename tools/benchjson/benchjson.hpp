#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

/// \file benchjson.hpp
/// Perf-trajectory recording for the BENCH_*.json baseline files.
///
/// Google-benchmark's console output is for humans; the repo's perf
/// trajectory needs a small, stable, machine-checkable artifact that later
/// PRs can diff against.  `Recorder` is a ConsoleReporter that additionally
/// captures every non-aggregate run's real time per iteration; `write_file`
/// serializes the captured entries as
///
///     {
///       "schema": "archipelago-bench-v1",
///       "bench": "<suite name>",
///       "unit": "ns_per_op",
///       "results": [
///         {"name": "fat_tree/4096/none_minimal", "ns_per_op": 123.4,
///          "iterations": 17},
///         ...
///       ]
///     }
///
/// and `validate_file` re-parses an emitted file and checks the schema
/// (ci/check.sh stage [5/8] runs it via the `benchjson_check` binary, so a
/// truncated or hand-mangled baseline fails CI instead of silently passing).
namespace hpc::benchjson {

/// One recorded benchmark result.
struct Entry {
  std::string name;        ///< benchmark name, e.g. "fat_tree/4096/none_minimal"
  double ns_per_op = 0.0;  ///< mean wall time per iteration in nanoseconds
  std::int64_t iterations = 0;
};

/// ConsoleReporter that also captures per-run ns/op for JSON emission.
class Recorder : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override;

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Serializes \p entries to \p path.  Returns true on success.
bool write_file(const std::string& path, const std::string& bench_name,
                const std::vector<Entry>& entries);

/// Validates a BENCH_*.json file: parses the JSON, checks the v1 schema, and
/// requires a non-empty result list with finite positive ns/op values and at
/// least \p min_iterations iterations per entry.  Single-iteration rows are
/// noise-level (the BENCH_obs.json "+17% disabled-probe overhead" artifact
/// came from exactly that), so committed baselines should be checked with
/// min_iterations >= 3; the default of 1 only guards against zero/negative
/// counts for suites whose slowest rows are genuinely single-shot.
/// Returns an empty string when valid, else a human-readable error.
[[nodiscard]] std::string validate_file(const std::string& path,
                                        std::int64_t min_iterations = 1);

/// Parses a BENCH_*.json file previously written by write_file.  Returns
/// true and fills the out-params on success (used by validate_file and by
/// future regression tooling that diffs two baselines).
bool read_file(const std::string& path, std::string& bench_name,
               std::vector<Entry>& entries, std::string& error);

/// Merges several archipelago-bench-v1 files into \p out_path under
/// \p bench_name, preserving input order.  Row names must be unique across
/// the inputs (two suites publishing the same row is a data error, not a
/// merge policy decision).  Returns an empty string on success, else an
/// error naming the offending file or row.
[[nodiscard]] std::string merge_files(const std::vector<std::string>& inputs,
                                      const std::string& out_path,
                                      const std::string& bench_name);

/// One row of a baseline comparison.
struct CompareRow {
  std::string name;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double delta_pct = 0.0;  ///< (current / baseline - 1) * 100
};

/// Compares two archipelago-bench-v1 files row by row.  The files must
/// contain exactly the same row names (a vanished or new row is a schema
/// change the caller must acknowledge, not a perf delta).  Fills \p rows in
/// the baseline's order and returns an empty string when every |delta| is
/// within \p tolerance_pct; otherwise returns an error naming the first
/// offending row.  tolerance_pct = 0 demands exact ns/op equality — the
/// mode campaign cell aggregates use, since those are deterministic
/// simulated quantities, not wall-clock noise.
[[nodiscard]] std::string compare_files(const std::string& baseline_path,
                                        const std::string& current_path,
                                        double tolerance_pct,
                                        std::vector<CompareRow>& rows);

}  // namespace hpc::benchjson
