#include "benchjson.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hpc::benchjson {

void Recorder::ReportRuns(const std::vector<Run>& reports) {
  for (const Run& run : reports) {
    if (run.run_type != Run::RT_Iteration) continue;  // skip mean/median/stddev
    if (run.error_occurred) continue;
    Entry e;
    e.name = run.benchmark_name();
    e.iterations = static_cast<std::int64_t>(run.iterations);
    e.ns_per_op = run.iterations > 0
                      ? run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9
                      : 0.0;
    entries_.push_back(std::move(e));
  }
  ConsoleReporter::ReportRuns(reports);
}

namespace {

/// JSON string escaping for the small subset we emit (names are benchmark
/// identifiers, but a stray quote or backslash must not corrupt the file).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Minimal recursive-descent parser for the benchjson schema subset:
/// objects, arrays, strings (with the escapes emitted above), and numbers.
/// Not a general JSON parser — but strict about what it does accept, so a
/// truncated or corrupted baseline is always rejected.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse_object_into(std::string& bench, std::vector<Entry>& entries,
                         std::string& error) {
    skip_ws();
    if (!consume('{')) return fail("expected '{' at top level", error);
    bool have_schema = false, have_unit = false, have_results = false;
    while (true) {
      skip_ws();
      if (consume('}')) break;
      std::string key;
      if (!parse_string(key)) return fail("expected object key", error);
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key", error);
      skip_ws();
      if (key == "schema") {
        std::string v;
        if (!parse_string(v)) return fail("schema must be a string", error);
        if (v != "archipelago-bench-v1")
          return fail("unknown schema '" + v + "'", error);
        have_schema = true;
      } else if (key == "bench") {
        if (!parse_string(bench)) return fail("bench must be a string", error);
      } else if (key == "unit") {
        std::string v;
        if (!parse_string(v)) return fail("unit must be a string", error);
        if (v != "ns_per_op") return fail("unit must be ns_per_op", error);
        have_unit = true;
      } else if (key == "results") {
        if (!parse_results(entries, error)) return false;
        have_results = true;
      } else {
        return fail("unexpected key '" + key + "'", error);
      }
      skip_ws();
      if (consume(',')) continue;
      skip_ws();
      if (consume('}')) break;
      return fail("expected ',' or '}' in object", error);
    }
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document", error);
    if (!have_schema) return fail("missing schema field", error);
    if (!have_unit) return fail("missing unit field", error);
    if (!have_results) return fail("missing results field", error);
    return true;
  }

 private:
  bool parse_results(std::vector<Entry>& entries, std::string& error) {
    if (!consume('[')) return fail("results must be an array", error);
    while (true) {
      skip_ws();
      if (consume(']')) return true;
      Entry e;
      if (!parse_entry(e, error)) return false;
      entries.push_back(std::move(e));
      skip_ws();
      if (consume(',')) continue;
      skip_ws();
      if (consume(']')) return true;
      return fail("expected ',' or ']' in results", error);
    }
  }

  bool parse_entry(Entry& e, std::string& error) {
    skip_ws();
    if (!consume('{')) return fail("result entry must be an object", error);
    bool have_ns = false;
    while (true) {
      skip_ws();
      if (consume('}')) break;
      std::string key;
      if (!parse_string(key)) return fail("expected entry key", error);
      skip_ws();
      if (!consume(':')) return fail("expected ':' in entry", error);
      skip_ws();
      if (key == "name") {
        if (!parse_string(e.name)) return fail("name must be a string", error);
      } else if (key == "ns_per_op") {
        if (!parse_number(e.ns_per_op)) return fail("ns_per_op must be a number", error);
        have_ns = true;
      } else if (key == "iterations") {
        double v = 0.0;
        if (!parse_number(v)) return fail("iterations must be a number", error);
        e.iterations = static_cast<std::int64_t>(v);
      } else {
        return fail("unexpected entry key '" + key + "'", error);
      }
      skip_ws();
      if (consume(',')) continue;
      skip_ws();
      if (consume('}')) break;
      return fail("expected ',' or '}' in entry", error);
    }
    if (e.name.empty()) return fail("entry missing name", error);
    if (!have_ns) return fail("entry '" + e.name + "' missing ns_per_op", error);
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    auto is_num_char = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
             c == '.' || c == 'e' || c == 'E';
    };
    while (pos_ < text_.size() && is_num_char(text_[pos_])) ++pos_;
    if (pos_ == start) return false;
    try {
      std::size_t used = 0;
      out = std::stod(text_.substr(start, pos_ - start), &used);
      return used == pos_ - start;
    } catch (...) {
      return false;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool fail(const std::string& msg, std::string& error) {
    error = msg + " (offset " + std::to_string(pos_) + ")";
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool write_file(const std::string& path, const std::string& bench_name,
                const std::vector<Entry>& entries) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  out << "  \"schema\": \"archipelago-bench-v1\",\n";
  out << "  \"bench\": \"" << escape(bench_name) << "\",\n";
  out << "  \"unit\": \"ns_per_op\",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    char num[64];
    std::snprintf(num, sizeof num, "%.3f", entries[i].ns_per_op);
    out << "    {\"name\": \"" << escape(entries[i].name) << "\", \"ns_per_op\": " << num
        << ", \"iterations\": " << entries[i].iterations << "}"
        << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

bool read_file(const std::string& path, std::string& bench_name,
               std::vector<Entry>& entries, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Parser parser(text);
  return parser.parse_object_into(bench_name, entries, error);
}

std::string merge_files(const std::vector<std::string>& inputs,
                        const std::string& out_path, const std::string& bench_name) {
  if (inputs.empty()) return "no input files to merge";
  std::vector<Entry> merged;
  std::set<std::string> seen;
  for (const std::string& path : inputs) {
    std::string bench;
    std::vector<Entry> entries;
    std::string error;
    if (!read_file(path, bench, entries, error)) return path + ": " + error;
    for (Entry& e : entries) {
      if (!seen.insert(e.name).second)
        return path + ": duplicate row '" + e.name + "' across merge inputs";
      merged.push_back(std::move(e));
    }
  }
  if (!write_file(out_path, bench_name, merged))
    return "cannot write '" + out_path + "'";
  return {};
}

std::string compare_files(const std::string& baseline_path,
                          const std::string& current_path, double tolerance_pct,
                          std::vector<CompareRow>& rows) {
  std::string bench_a, bench_b, error;
  std::vector<Entry> base, cur;
  if (!read_file(baseline_path, bench_a, base, error))
    return baseline_path + ": " + error;
  if (!read_file(current_path, bench_b, cur, error))
    return current_path + ": " + error;

  std::map<std::string, const Entry*> by_name;
  for (const Entry& e : cur) {
    if (!by_name.emplace(e.name, &e).second)
      return current_path + ": duplicate row '" + e.name + "'";
  }
  rows.clear();
  for (const Entry& b : base) {
    const auto it = by_name.find(b.name);
    if (it == by_name.end())
      return "row '" + b.name + "' present in baseline but missing from " +
             current_path;
    CompareRow row;
    row.name = b.name;
    row.baseline_ns = b.ns_per_op;
    row.current_ns = it->second->ns_per_op;
    row.delta_pct = b.ns_per_op > 0.0
                        ? (it->second->ns_per_op / b.ns_per_op - 1.0) * 100.0
                        : 0.0;
    rows.push_back(std::move(row));
    by_name.erase(it);
  }
  if (!by_name.empty())
    return "row '" + by_name.begin()->first + "' present in " + current_path +
           " but missing from baseline";
  for (const CompareRow& row : rows) {
    const bool exact_mode = tolerance_pct <= 0.0;
    if (exact_mode ? row.current_ns != row.baseline_ns  // archlint: allow(float-eq)
                   : std::fabs(row.delta_pct) > tolerance_pct) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%+.2f%%", row.delta_pct);
      return "row '" + row.name + "' moved " + buf + " (baseline " +
             std::to_string(row.baseline_ns) + " ns, current " +
             std::to_string(row.current_ns) + " ns, tolerance " +
             std::to_string(tolerance_pct) + "%)";
    }
  }
  return {};
}

std::string validate_file(const std::string& path, std::int64_t min_iterations) {
  std::string bench;
  std::vector<Entry> entries;
  std::string error;
  if (!read_file(path, bench, entries, error)) return error;
  if (bench.empty()) return "missing bench name";
  if (entries.empty()) return "no benchmark results recorded";
  if (min_iterations < 1) min_iterations = 1;
  for (const Entry& e : entries) {
    if (!std::isfinite(e.ns_per_op) || e.ns_per_op <= 0.0)
      return "entry '" + e.name + "' has non-positive ns_per_op";
    if (e.iterations <= 0) return "entry '" + e.name + "' has no iterations";
    if (e.iterations < min_iterations)
      return "entry '" + e.name + "' ran only " + std::to_string(e.iterations) +
             " iteration(s), need >= " + std::to_string(min_iterations) +
             " for a trustworthy baseline";
  }
  return {};
}

}  // namespace hpc::benchjson
