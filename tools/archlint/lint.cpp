#include "lint.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>

#include "include_graph.hpp"
#include "semantic.hpp"
#include "symbols.hpp"

namespace hpc::lint {

namespace {

bool is_ident_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool is_header(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") || ends_with(path, ".hh");
}

/// True if \p word occurs in \p s delimited by non-identifier characters.
/// Used only on directive text (token matching covers ordinary code).
bool has_word(std::string_view s, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

std::string strip_spaces(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    if (c != ' ' && c != '\t') out += c;
  return out;
}

/// Does the comment carry `archlint: allow(<rule>[, <rule>...])` for \p r?
bool comment_allows(std::string_view comment, Rule r) {
  const std::string flat = strip_spaces(comment);
  std::size_t pos = flat.find("archlint:allow(");
  while (pos != std::string::npos) {
    const std::size_t open = pos + std::string_view("archlint:allow(").size();
    const std::size_t close = flat.find(')', open);
    if (close == std::string::npos) return false;
    std::stringstream list(flat.substr(open, close - open));
    std::string tok;
    while (std::getline(list, tok, ','))
      if (tok == id_of(r)) return true;
    pos = flat.find("archlint:allow(", close);
  }
  return false;
}

/// A directive's text with quoted regions blanked, so `#include "rand.hpp"`
/// cannot trip a word match while `#include <unordered_map>` still does.
std::string directive_code(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_quote = false;
  for (const char c : text) {
    if (c == '"') {
      in_quote = !in_quote;
      out += c;
    } else {
      out += in_quote ? ' ' : c;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream rule passes (D1-D5, D8, D9).
// ---------------------------------------------------------------------------

struct Scanner {
  std::string_view path;
  const LexedFile& lf;
  const RuleSet& rules;
  std::vector<Finding> findings;

  [[nodiscard]] std::size_t ntok() const noexcept { return lf.tokens.size(); }
  [[nodiscard]] const Token& tok(std::size_t i) const noexcept { return lf.tokens[i]; }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const noexcept {
    return i < ntok() && tok(i).text == text;
  }
  [[nodiscard]] bool is_ident(std::size_t i) const noexcept {
    return i < ntok() && tok(i).kind == TokKind::kIdent;
  }

  void add(Rule r, std::size_t line, std::string message) {
    if (!rules.contains(r)) return;
    if (line_allows(lf, r, line)) return;
    findings.push_back(Finding{r, std::string(path), line == 0 ? 1 : line, std::move(message)});
  }

  // -- D1: ambient nondeterminism ------------------------------------------
  void check_ambient_rng() {
    // The one place allowed to touch <random> engine seeding machinery.
    if (path.find("sim/rng.") != std::string_view::npos) return;
    static constexpr std::string_view kWords[] = {
        "random_device", "srand",          "system_clock", "steady_clock",
        "high_resolution_clock", "file_clock", "utc_clock", "gettimeofday",
        "clock_gettime", "timespec_get",   "localtime",    "gmtime",
    };
    auto banned = [&](std::string_view w) {
      for (const std::string_view k : kWords)
        if (w == k) return true;
      return false;
    };
    for (std::size_t i = 0; i < ntok(); ++i) {
      const Token& t = tok(i);
      if (t.kind == TokKind::kDirective) {
        const std::string code = directive_code(t.text);
        for (const std::string_view w : kWords)
          if (has_word(code, w))
            add(Rule::kAmbientRng, t.line,
                "ambient nondeterminism ('" + std::string(w) +
                    "'): draw from an explicitly seeded hpc::sim::Rng and simulated time only");
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      if (banned(t.text)) {
        add(Rule::kAmbientRng, t.line,
            "ambient nondeterminism ('" + t.text +
                "'): draw from an explicitly seeded hpc::sim::Rng and simulated time only");
        continue;
      }
      if ((t.text == "rand" || t.text == "clock") && is(i + 1, "("))
        add(Rule::kAmbientRng, t.line,
            "ambient nondeterminism (libc rand()/clock()): use hpc::sim::Rng / sim::TimeNs");
      if (t.text == "time" && is(i + 1, "(") &&
          (is(i + 2, "nullptr") || is(i + 2, "NULL")) && is(i + 3, ")"))
        add(Rule::kAmbientRng, t.line,
            "ambient nondeterminism (wall-clock time()): use the simulator clock");
    }
  }

  // -- D2: iteration-order-unstable containers -----------------------------
  void check_unordered() {
    for (std::size_t i = 0; i < ntok(); ++i) {
      const Token& t = tok(i);
      std::string_view hit;
      if (t.kind == TokKind::kIdent &&
          (t.text == "unordered_map" || t.text == "unordered_set")) {
        hit = t.text;
      } else if (t.kind == TokKind::kDirective) {
        const std::string code = directive_code(t.text);
        if (has_word(code, "unordered_map")) hit = "unordered_map";
        else if (has_word(code, "unordered_set")) hit = "unordered_set";
      }
      if (!hit.empty())
        add(Rule::kUnorderedIter, t.line,
            "iteration-order-unstable container '" + std::string(hit) +
                "': use std::map/std::set or a sorted vector, or annotate "
                "'archlint: allow(unordered-iter)' if its order never leaks");
    }
  }

  // -- D3: raw-typed simulated-time parameters in public APIs --------------
  void check_raw_time() {
    if (!is_header(path)) return;
    auto raw_type = [&](std::size_t i) {  // is tok(i) a raw arithmetic type?
      if (!is_ident(i)) return false;
      const std::string& w = tok(i).text;
      return w == "double" || w == "float" || w == "long" || w == "uint64_t" ||
             w == "int64_t" || w == "uint32_t" || w == "int32_t";
    };
    for (std::size_t i = 1; i < ntok(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokKind::kIdent || !ends_with(t.text, "_ns")) continue;
      if (!raw_type(i - 1)) continue;
      // A parameter ends at ',' or ')' (optionally through a default
      // argument); ';' means a member/local, '(' means a function name.
      std::size_t j = i + 1;
      if (is(j, "=")) {
        int depth = 0;
        for (++j; j < ntok(); ++j) {
          const std::string& w = tok(j).text;
          if (w == "(" || w == "[" || w == "{") ++depth;
          else if (w == ")" || w == "]" || w == "}") {
            if (depth == 0) break;
            --depth;
          } else if ((w == "," || w == ";") && depth == 0) {
            break;
          }
        }
      }
      if (is(j, ",") || is(j, ")"))
        add(Rule::kRawTime, t.line,
            "raw simulated-time parameter '" + t.text +
                "': pass sim::TimeNs (src/sim/time.hpp), or annotate "
                "'archlint: allow(raw-time)' for analytic fractional-ns models");
    }
  }

  // -- D4: [[nodiscard]] on const accessors and factories ------------------

  /// Walks back from \p i to the start of the enclosing declaration
  /// (exclusive boundary).  Recognizes `template <...>` so a one-line
  /// template factory anchors at `template`, not mid-expression.
  [[nodiscard]] std::size_t decl_start(std::size_t i) const {
    std::size_t b = i;
    while (b > 0) {
      const Token& t = tok(b - 1);
      if (t.kind == TokKind::kDirective || t.kind == TokKind::kString) break;
      const std::string& w = t.text;
      if (w == ";" || w == "{" || w == "}") break;
      if (w == ":" ) break;  // access specifier / label boundary
      if (w == ")") break;   // e.g. a preceding function's parameter list
      --b;
    }
    return b;
  }

  [[nodiscard]] bool range_has_ident(std::size_t b, std::size_t e, std::string_view w) const {
    for (std::size_t i = b; i < e && i < ntok(); ++i)
      if (tok(i).kind == TokKind::kIdent && tok(i).text == w) return true;
    return false;
  }

  void check_nodiscard() {
    if (!is_header(path)) return;
    if (path.find("src/sim") == std::string_view::npos &&
        path.find("src/core") == std::string_view::npos &&
        path.find("src/obs") == std::string_view::npos)
      return;
    static constexpr std::string_view kSpecifiers[] = {
        "static", "virtual", "inline", "constexpr", "friend", "explicit", "consteval"};
    auto is_specifier = [&](const std::string& w) {
      for (const std::string_view s : kSpecifiers)
        if (w == s) return true;
      return false;
    };

    for (std::size_t i = 1; i < ntok(); ++i) {
      // ---- const accessor: `)` `const` [noexcept/override/final]* {;=->{}
      if (is_ident(i) && tok(i).text == "const" && is(i - 1, ")")) {
        std::size_t j = i + 1;
        while (is_ident(j) && (tok(j).text == "noexcept" || tok(j).text == "override" ||
                               tok(j).text == "final")) {
          ++j;
          if (is(j, "(")) {  // noexcept(expr)
            int depth = 1;
            for (++j; j < ntok() && depth > 0; ++j) {
              if (tok(j).text == "(") ++depth;
              if (tok(j).text == ")") --depth;
            }
          }
        }
        if (!(is(j, ";") || is(j, "{") || is(j, "=") || is(j, "->"))) continue;
        // Matching '(' for the ')' at i-1.
        int depth = 0;
        std::size_t k = i - 1;
        while (k > 0) {
          const std::string& w = tok(k).text;
          if (w == ")") ++depth;
          if (w == "(" && --depth == 0) break;
          --k;
        }
        if (k == 0) continue;
        std::string name = "member";
        if (is_ident(k - 1)) name = tok(k - 1).text;
        else if (k >= 2 && is_ident(k - 2) && tok(k - 2).text == "operator")
          name = "operator" + tok(k - 1).text;
        const std::size_t b = decl_start(k > 0 ? k - 1 : 0);
        if (range_has_ident(b, k, "nodiscard")) continue;
        // Void-returning members have nothing to discard.
        std::size_t f = b;
        while (f < k && ((is_ident(f) && (is_specifier(tok(f).text) || tok(f).text == "nodiscard")) ||
                         tok(f).text == "[" || tok(f).text == "]"))
          ++f;
        if (is(f, "void") && !is(f + 1, "*")) continue;
        add(Rule::kNodiscard, tok(i).line, "const accessor '" + name + "' missing [[nodiscard]]");
        continue;
      }
      // ---- factory: `make_*` / `from_*` with a return type, at decl scope
      if (is_ident(i) && (starts_with(tok(i).text, "make_") || starts_with(tok(i).text, "from_")) &&
          is(i + 1, "(")) {
        if (!is_ident(i - 1)) continue;  // needs a preceding type name
        const std::string& ret = tok(i - 1).text;
        if (ret == "return" || ret == "void" || ret == "throw" || ret == "delete" ||
            ret == "new" || ret == "case" || ret == "goto" || ret == "co_return" ||
            ret == "co_await" || ret == "co_yield")
          continue;
        // Start of the (possibly qualified) return type chain.
        std::size_t cs = i - 1;
        while (cs >= 2 && is(cs - 1, "::") && is_ident(cs - 2)) cs -= 2;
        // Everything before the type must be declaration scenery.
        std::size_t b = cs;
        bool marked = false;
        bool boundary = false;
        while (b > 0) {
          const Token& t = tok(b - 1);
          const std::string& w = t.text;
          if (t.kind == TokKind::kIdent) {
            if (w == "nodiscard") marked = true;
            else if (!is_specifier(w)) break;
            --b;
            continue;
          }
          if (w == "[" || w == "]") {
            --b;
            continue;
          }
          if (w == ">") {  // template <...> prefix
            int depth = 0;
            std::size_t g = b - 1;
            while (g > 0) {
              if (tok(g).text == ">") ++depth;
              if (tok(g).text == "<" && --depth == 0) break;
              --g;
            }
            if (g >= 1 && is_ident(g - 1) && tok(g - 1).text == "template") {
              b = g - 1;
              continue;
            }
            break;
          }
          if (w == ";" || w == "{" || w == "}" || w == ":" || t.kind == TokKind::kDirective) {
            boundary = true;
            break;
          }
          break;
        }
        if (b == 0) boundary = true;
        if (!boundary || marked) continue;
        add(Rule::kNodiscard, tok(i).line,
            "factory function '" + tok(i).text + "' missing [[nodiscard]]");
      }
    }
  }

  // -- D5: header hygiene ---------------------------------------------------
  void check_header_hygiene() {
    if (!is_header(path)) return;
    bool pragma_early = false;
    std::size_t lines_before = 0;
    std::size_t last_line = 0;
    for (const Token& t : lf.tokens) {
      if (t.kind == TokKind::kDirective && strip_spaces(t.text) == "#pragmaonce") {
        pragma_early = lines_before < 5;  // within the first 5 code lines
        break;
      }
      if (t.line != last_line) {
        ++lines_before;
        last_line = t.line;
      }
      if (lines_before >= 5) break;
    }
    bool has_namespace = false;
    for (std::size_t i = 0; i + 1 < ntok() && !has_namespace; ++i) {
      if (!is_ident(i) || tok(i).text != "namespace") continue;
      for (std::size_t j = i + 1; j < i + 5 && j < ntok(); ++j)
        if (is_ident(j) && starts_with(tok(j).text, "hpc")) {
          has_namespace = true;
          break;
        }
    }
    bool has_file_doc = false;
    for (const std::string& c : lf.line_comments)
      if (c.find("\\file") != std::string::npos) {
        has_file_doc = true;
        break;
      }
    if (!pragma_early)
      add(Rule::kHeaderHygiene, 1, "header must start with '#pragma once'");
    if (!has_namespace)
      add(Rule::kHeaderHygiene, 1, "header must declare into the hpc:: namespace");
    if (!has_file_doc)
      add(Rule::kHeaderHygiene, 1, "header must carry a '\\file' doc block");
  }

  // -- D8: raw ==/!= between floating-point operands ------------------------
  void check_float_eq() {
    if (path.find("tests/") != std::string_view::npos || starts_with(path, "tests")) return;
    // Identifiers this file declares with a plain double/float value type
    // (pointers excluded: comparing pointers is exact and fine).
    std::vector<std::string> float_vars;
    for (std::size_t i = 0; i + 1 < ntok(); ++i) {
      if (!is_ident(i) || (tok(i).text != "double" && tok(i).text != "float")) continue;
      std::size_t j = i + 1;
      while (is(j, "&")) ++j;  // reference to float still compares values
      if (is(j, "*")) continue;
      if (!is_ident(j)) continue;
      if (is(j + 1, "(")) continue;  // function returning double, not a var
      float_vars.push_back(tok(j).text);
    }
    std::sort(float_vars.begin(), float_vars.end());
    auto is_float_var = [&](const std::string& w) {
      return std::binary_search(float_vars.begin(), float_vars.end(), w);
    };
    auto float_operand = [&](std::size_t i) {
      if (i >= ntok()) return false;
      const Token& t = tok(i);
      if (t.kind == TokKind::kNumber) return is_float_literal(t.text);
      if (t.kind == TokKind::kIdent) return is_float_var(t.text);
      return false;
    };
    auto is_literal_text = [&](std::size_t i) {
      return i < ntok() &&
             (tok(i).kind == TokKind::kString || tok(i).kind == TokKind::kChar);
    };
    for (std::size_t i = 1; i + 1 < ntok(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokKind::kPunct || (t.text != "==" && t.text != "!=")) continue;
      if (is_ident(i - 1) && tok(i - 1).text == "operator") continue;  // operator==
      std::size_t rhs = i + 1;
      if (is(rhs, "-") || is(rhs, "+")) ++rhs;  // unary sign on a literal
      // A string/char literal on either side means this is not a float
      // comparison, whatever same-named variables exist elsewhere in the
      // file (the float_vars heuristic is name-based, not scope-based).
      if (is_literal_text(i - 1) || is_literal_text(rhs)) continue;
      if (float_operand(i - 1) || float_operand(rhs))
        add(Rule::kFloatEq, t.line,
            "raw floating-point '" + t.text +
                "' comparison: compare against an explicit tolerance, or annotate "
                "'archlint: allow(float-eq)' if exactness is intended");
    }
  }

  // -- D9: mutable namespace-scope variables in src/ ------------------------
  //
  // A statement-level walk of namespace scope.  Brace bodies (functions,
  // classes, initializers) are skipped wholesale; `namespace ... {` and
  // `extern "C" {` just continue the walk, so a '}' seen between statements
  // is always a namespace close and needs no stack.
  void check_mutable_global() {
    if (path.find("src/") == std::string_view::npos && !starts_with(path, "src")) return;

    // j = index of '{'; returns index just past the matching '}'.
    auto skip_braces = [&](std::size_t j) {
      int depth = 0;
      for (; j < ntok(); ++j) {
        if (tok(j).kind != TokKind::kPunct) continue;
        if (tok(j).text == "{") ++depth;
        else if (tok(j).text == "}" && --depth == 0) return j + 1;
      }
      return j;
    };

    auto flag_variable = [&](std::size_t b, std::size_t name_end) {
      std::string name = "variable";
      for (std::size_t j = b; j < name_end; ++j) {
        if (!is_ident(j)) continue;
        const bool decl_pos = j + 1 >= name_end || is(j + 1, "=") || is(j + 1, "[") ||
                              is(j + 1, ",") || is(j + 1, "{");
        if (decl_pos) {
          name = tok(j).text;
          break;
        }
      }
      add(Rule::kMutableGlobal, tok(b).line,
          "mutable namespace-scope variable '" + name +
              "': make it const/constexpr, or move the state into an explicit "
              "context object (hidden globals break replayability)");
    };

    std::size_t i = 0;
    while (i < ntok()) {
      const Token& t = tok(i);
      if (t.kind == TokKind::kDirective || t.text == ";" || t.text == "}") {
        ++i;
        continue;
      }
      // Collect one namespace-scope statement up to a top-level ';' or '{'.
      // Angle brackets count as nesting only left of a top-level '=' (they
      // are template args in a declarator there; in an initializer they can
      // be comparisons), and never right after `operator`.
      const std::size_t b = i;
      int depth = 0;
      bool seen_eq = false;
      std::size_t e = ntok();
      char delim = '\0';
      for (std::size_t j = i; j < ntok(); ++j) {
        if (tok(j).kind != TokKind::kPunct) continue;
        const std::string& w = tok(j).text;
        const bool after_operator = j > b && is(j - 1, "operator");
        if (w == "(" || w == "[") ++depth;
        else if (w == ")" || w == "]") { if (depth > 0) --depth; }
        else if (w == "=" && depth == 0) seen_eq = true;
        else if (w == "<" && !seen_eq && !after_operator) ++depth;
        else if (w == ">" && !seen_eq && !after_operator) { if (depth > 0) --depth; }
        else if (w == ">>" && !seen_eq) { if (depth > 0) depth -= depth >= 2 ? 2 : 1; }
        else if (depth == 0 && (w == ";" || w == "{" || w == "}")) {
          e = j;
          delim = w[0];
          break;
        }
      }
      if (e == ntok()) break;  // unterminated tail; nothing more to see
      if (delim == '}') {      // stray close inside a malformed statement
        i = e;
        continue;
      }

      auto stmt_has = [&](std::string_view w) { return range_has_ident(b, e, w); };
      const std::string& head = tok(b).text;
      const bool has_const =
          stmt_has("const") || stmt_has("constexpr") || stmt_has("constinit");
      std::size_t eq = e;  // first top-level '='
      {
        int d = 0;
        for (std::size_t j = b; j < e; ++j) {
          const std::string& w = tok(j).text;
          if (w == "(" || w == "[" || w == "<") ++d;
          else if ((w == ")" || w == "]" || w == ">") && d > 0) --d;
          else if (w == "=" && d == 0) {
            eq = j;
            break;
          }
        }
      }

      static constexpr std::string_view kSkipHeads[] = {
          "using", "typedef", "template", "friend", "static_assert", "public",
          "private", "protected", "concept", "asm", "export", "import", "module",
          "requires"};
      bool skip_head = false;
      for (const std::string_view w : kSkipHeads) skip_head = skip_head || head == w;

      if (head == "namespace" || (head == "extern" && delim == '{')) {
        i = e + 1;  // enter the scope: still namespace scope inside
        continue;
      }
      if (head == "extern" || skip_head) {  // declarations, not definitions
        i = delim == '{' ? skip_braces(e) : e + 1;
        continue;
      }

      if (delim == '{') {
        if (eq != e) {
          // `int x = {1};` / `auto v = std::vector<int>{...};`
          if (!has_const) flag_variable(b, eq);
          i = skip_braces(e);
          if (i < ntok() && tok(i).text == ";") ++i;
          continue;
        }
        const bool is_type =
            stmt_has("class") || stmt_has("struct") || stmt_has("union") || stmt_has("enum");
        i = skip_braces(e);
        if (is_type) {
          // `struct X { ... } instance;` — a non-empty tail declares variables.
          const std::size_t tail = i;
          while (i < ntok() && tok(i).text != ";" && tok(i).text != "{" && tok(i).text != "}")
            ++i;
          bool tail_has_call = false;
          for (std::size_t k = tail; k < i; ++k) tail_has_call = tail_has_call || is(k, "(");
          if (i < ntok() && tok(i).text == ";" && !has_const && !tail_has_call) {
            for (std::size_t k = tail; k < i; ++k)
              if (is_ident(k)) {
                flag_variable(k, i);
                break;
              }
          }
          if (i < ntok() && tok(i).text == ";") ++i;
        }
        continue;
      }

      // ';' statements: filter out non-variable declarations.
      i = e + 1;
      if (e - b < 2) continue;
      if (stmt_has("operator")) continue;
      if (head == "class" || head == "struct" || head == "union" || head == "enum")
        continue;  // forward declaration (`struct X a;` vars are idiomatically `X a;`)
      bool has_call = false;  // a top-level '(' before '=' means a function
      for (std::size_t j = b; j < eq; ++j) has_call = has_call || is(j, "(");
      if (has_call || has_const) continue;
      flag_variable(b, eq);
    }
  }
};

}  // namespace

std::string_view id_of(Rule r) noexcept {
  switch (r) {
    case Rule::kAmbientRng: return "ambient-rng";
    case Rule::kUnorderedIter: return "unordered-iter";
    case Rule::kRawTime: return "raw-time";
    case Rule::kNodiscard: return "nodiscard";
    case Rule::kHeaderHygiene: return "header-hygiene";
    case Rule::kLayerViolation: return "layer-violation";
    case Rule::kIncludeCycle: return "include-cycle";
    case Rule::kFloatEq: return "float-eq";
    case Rule::kMutableGlobal: return "mutable-global";
    case Rule::kNondetContainer: return "nondet-container";
    case Rule::kEntropySource: return "entropy-source";
    case Rule::kRngDiscipline: return "rng-discipline";
    case Rule::kDynamicInitGlobal: return "dynamic-init-global";
    case Rule::kDeadPublicApi: return "dead-public-api";
    case Rule::kIoError: return "io-error";
  }
  return "unknown";
}

bool rule_from_id(std::string_view id, Rule& out) noexcept {
  for (int i = 0; i < kRuleCount; ++i) {
    const Rule r = static_cast<Rule>(i);
    if (id_of(r) == id) {
      out = r;
      return true;
    }
  }
  // "D1".."D14" shorthand, matching the docs.  io-error has no number: it is
  // not a style rule and cannot be toggled.
  if (id.size() >= 2 && (id[0] == 'D' || id[0] == 'd')) {
    int n = 0;
    for (std::size_t i = 1; i < id.size(); ++i) {
      if (id[i] < '0' || id[i] > '9') return false;
      n = n * 10 + (id[i] - '0');
    }
    if (n >= 1 && n <= kRuleCount - 1) {
      out = static_cast<Rule>(n - 1);
      return true;
    }
  }
  return false;
}

std::string format(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + std::string(id_of(f.rule)) + "] " +
         f.message;
}

bool line_allows(const LexedFile& lf, Rule r, std::size_t line) {
  if (line >= 1 && line <= lf.line_comments.size() &&
      comment_allows(lf.line_comments[line - 1], r))
    return true;
  if (line >= 2 && line - 1 <= lf.line_comments.size() &&
      comment_allows(lf.line_comments[line - 2], r))
    return true;
  return false;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Options& opts) {
  const LexedFile lf = lex(text);
  Scanner s{path, lf, opts.rules, {}};
  s.check_ambient_rng();
  s.check_unordered();
  s.check_raw_time();
  s.check_nodiscard();
  s.check_header_hygiene();
  s.check_float_eq();
  s.check_mutable_global();
  return std::move(s.findings);
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text) {
  return lint_source(path, text, Options{});
}

std::vector<Finding> lint_file(const std::filesystem::path& file, const Options& opts) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {Finding{Rule::kIoError, file.generic_string(), 1, "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(file.generic_string(), buf.str(), opts);
}

std::vector<Finding> lint_file(const std::filesystem::path& file) {
  return lint_file(file, Options{});
}

namespace {

void sort_findings(std::vector<Finding>& all) {
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return static_cast<int>(a.rule) < static_cast<int>(b.rule);
  });
}

}  // namespace

std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots,
                               const TreeOptions& opts) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (!fs::exists(root)) continue;
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".h" && ext != ".hh" && ext != ".cpp" && ext != ".cc")
        continue;
      // Skip build trees anywhere, and committed violation corpora below
      // the scan root (a fixtures dir passed AS the root scans normally).
      bool skip = false;
      for (const auto& part : entry.path())
        if (part.string().rfind("build", 0) == 0) skip = true;
      const fs::path rel_to_root = entry.path().lexically_relative(root);
      for (const auto& part : rel_to_root)
        if (part.string() == "fixtures") skip = true;
      if (!skip) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Options file_opts{opts.rules};
  const bool graph_pass = !opts.layers_file.empty() &&
                          (opts.rules.contains(Rule::kLayerViolation) ||
                           opts.rules.contains(Rule::kIncludeCycle));
  const bool semantic_pass = opts.rules.contains(Rule::kNondetContainer) ||
                             opts.rules.contains(Rule::kEntropySource) ||
                             opts.rules.contains(Rule::kRngDiscipline) ||
                             opts.rules.contains(Rule::kDynamicInitGlobal) ||
                             opts.rules.contains(Rule::kDeadPublicApi);

  // Phase 1: read + lex + per-file rules + indexing.  One pre-sized slot per
  // file, claimed off an atomic counter, so the merged result is identical
  // at any job count — parallelism changes wall-clock only, never output.
  struct Slot {
    std::vector<Finding> findings;
    FileIncludes includes;
    FileSymbols symbols;
    bool readable = false;
  };
  std::vector<Slot> slots(files.size());
  const auto scan_one = [&](std::size_t i) {
    const fs::path& f = files[i];
    const std::string rel = opts.root.empty()
                                ? f.generic_string()
                                : f.lexically_relative(opts.root).generic_string();
    const std::string report_path = rel.rfind("..", 0) == 0 ? f.generic_string() : rel;
    Slot& slot = slots[i];
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      slot.findings.push_back(Finding{Rule::kIoError, report_path, 1, "cannot read file"});
      return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const LexedFile lf = lex(text);
    Scanner s{report_path, lf, file_opts.rules, {}};
    s.check_ambient_rng();
    s.check_unordered();
    s.check_raw_time();
    s.check_nodiscard();
    s.check_header_hygiene();
    s.check_float_eq();
    s.check_mutable_global();
    slot.findings = std::move(s.findings);
    slot.readable = true;
    if (graph_pass) slot.includes = extract_includes(report_path, lf);
    if (semantic_pass) slot.symbols = extract_symbols(report_path, lf);
  };

  const std::size_t jobs =
      std::min<std::size_t>(std::max(opts.jobs, 1), std::max<std::size_t>(files.size(), 1));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) scan_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w)
      workers.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < files.size(); i = next.fetch_add(1))
          scan_one(i);
      });
    for (std::thread& t : workers) t.join();
  }

  // Barrier: merge per-file results in file order, then run the tree-level
  // passes over the deterministic merged views.
  std::vector<Finding> all;
  std::vector<FileIncludes> includes;
  std::vector<FileSymbols> symbols;
  if (graph_pass) includes.reserve(files.size());
  if (semantic_pass) symbols.reserve(files.size());
  for (Slot& slot : slots) {
    all.insert(all.end(), std::make_move_iterator(slot.findings.begin()),
               std::make_move_iterator(slot.findings.end()));
    if (!slot.readable) continue;
    if (graph_pass) includes.push_back(std::move(slot.includes));
    if (semantic_pass) symbols.push_back(std::move(slot.symbols));
  }

  if (semantic_pass) {
    SemanticConfig cfg;
    std::string error;
    if (!opts.semantics_file.empty() && !load_semantics(opts.semantics_file, cfg, error)) {
      all.push_back(Finding{Rule::kIoError, opts.semantics_file.generic_string(), 1,
                            "cannot load semantics config: " + error});
    } else {
      const SymbolIndex index = SymbolIndex::build(std::move(symbols));
      std::vector<Finding> sem = check_semantics(index, opts.rules, cfg);
      all.insert(all.end(), std::make_move_iterator(sem.begin()),
                 std::make_move_iterator(sem.end()));
    }
  }

  if (graph_pass) {
    LayerSpec spec;
    std::string error;
    if (!load_layers(opts.layers_file, spec, error)) {
      all.push_back(Finding{Rule::kIoError, opts.layers_file.generic_string(), 1,
                            "cannot load layering spec: " + error});
    } else {
      if (opts.rules.contains(Rule::kLayerViolation)) {
        std::vector<Finding> d6 = check_layering(includes, spec);
        all.insert(all.end(), std::make_move_iterator(d6.begin()),
                   std::make_move_iterator(d6.end()));
      }
      if (opts.rules.contains(Rule::kIncludeCycle)) {
        std::vector<Finding> d7 = check_cycles(includes);
        all.insert(all.end(), std::make_move_iterator(d7.begin()),
                   std::make_move_iterator(d7.end()));
      }
    }
  }

  sort_findings(all);
  return all;
}

std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots) {
  return lint_tree(roots, TreeOptions{});
}

}  // namespace hpc::lint
