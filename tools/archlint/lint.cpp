#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

namespace hpc::lint {

namespace {

bool is_ident(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One physical source line split into its code and comment parts.
/// String/char literal *contents* are blanked in `code` (the quotes remain),
/// so fixture snippets that mention forbidden tokens inside strings never
/// match; comments are collected separately so `allow(...)` annotations and
/// `\file` blocks stay visible.
struct Line {
  std::string code;
  std::string comment;
};

std::vector<Line> split_lines(std::string_view text) {
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::vector<Line> lines;
  Line cur;
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  auto flush = [&] {
    lines.push_back(std::move(cur));
    cur = Line{};
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      // Line comments end at the newline; strings should not span lines, but
      // if one does (or a block comment), the state carries over.
      if (st == St::kLineComment) st = St::kCode;
      flush();
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string?  R"delim( — the R must be its own token.
          if (i > 0 && text[i - 1] == 'R' && (i < 2 || !is_ident(text[i - 2]))) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') raw_delim += text[j++];
            st = St::kRawString;
            cur.code += '"';
            i = j;  // consume up to and including '('
          } else {
            st = St::kString;
            cur.code += '"';
          }
        } else if (c == '\'') {
          st = St::kChar;
          cur.code += '\'';
        } else {
          cur.code += c;
        }
        break;
      case St::kLineComment:
        cur.comment += c;
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;  // skip escaped char
        } else if (c == '"') {
          st = St::kCode;
          cur.code += '"';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          cur.code += '\'';
        }
        break;
      case St::kRawString: {
        // Close only on )delim".
        if (c == ')' && text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < text.size() && text[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          st = St::kCode;
          cur.code += '"';
        }
        break;
      }
    }
  }
  flush();
  return lines;
}

/// True if \p word occurs in \p s delimited by non-identifier characters.
bool has_word(const std::string& s, std::string_view word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident(s[end]);
    if (left_ok && right_ok) return true;
    ++pos;
  }
  return false;
}

/// True if \p fn occurs as a call: word-delimited and followed by '('.
bool has_call(const std::string& s, std::string_view fn) {
  std::size_t pos = 0;
  while ((pos = s.find(fn, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    std::size_t end = pos + fn.size();
    while (end < s.size() && s[end] == ' ') ++end;
    if (left_ok && end < s.size() && s[end] == '(') return true;
    ++pos;
  }
  return false;
}

std::string strip_spaces(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    if (c != ' ' && c != '\t') out += c;
  return out;
}

/// Does the comment carry `archlint: allow(<rule>[, <rule>...])` for \p r?
bool comment_allows(const std::string& comment, Rule r) {
  const std::string flat = strip_spaces(comment);
  std::size_t pos = flat.find("archlint:allow(");
  while (pos != std::string::npos) {
    const std::size_t open = pos + std::string_view("archlint:allow(").size();
    const std::size_t close = flat.find(')', open);
    if (close == std::string::npos) return false;
    std::stringstream list(flat.substr(open, close - open));
    std::string tok;
    while (std::getline(list, tok, ','))
      if (tok == id_of(r)) return true;
    pos = flat.find("archlint:allow(", close);
  }
  return false;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool is_header(std::string_view path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h") || ends_with(path, ".hh");
}

struct Scanner {
  std::string_view path;
  std::vector<Line> lines;
  std::vector<Finding> findings;

  bool allowed(Rule r, std::size_t i) const {
    if (i < lines.size() && comment_allows(lines[i].comment, r)) return true;
    if (i > 0 && comment_allows(lines[i - 1].comment, r)) return true;
    return false;
  }

  void add(Rule r, std::size_t i, std::string message) {
    if (allowed(r, i)) return;
    findings.push_back(Finding{r, std::string(path), i + 1, std::move(message)});
  }

  // -- D1: ambient nondeterminism ------------------------------------------
  void check_ambient_rng() {
    // The one place allowed to touch <random> engine seeding machinery.
    if (path.find("sim/rng.") != std::string_view::npos) return;
    static constexpr std::string_view kWords[] = {
        "random_device", "srand",          "system_clock", "steady_clock",
        "high_resolution_clock", "file_clock", "utc_clock", "gettimeofday",
        "clock_gettime", "timespec_get",   "localtime",    "gmtime",
    };
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      for (const std::string_view w : kWords)
        if (has_word(code, w))
          add(Rule::kAmbientRng, i,
              "ambient nondeterminism ('" + std::string(w) +
                  "'): draw from an explicitly seeded hpc::sim::Rng and simulated time only");
      if (has_call(code, "rand") || has_call(code, "clock"))
        add(Rule::kAmbientRng, i,
            "ambient nondeterminism (libc rand()/clock()): use hpc::sim::Rng / sim::TimeNs");
      const std::string flat = strip_spaces(code);
      for (const std::string_view w : {std::string_view("time(nullptr)"), std::string_view("time(NULL)")})
        if (flat.find(w) != std::string::npos)
          add(Rule::kAmbientRng, i,
              "ambient nondeterminism (wall-clock time()): use the simulator clock");
    }
  }

  // -- D2: iteration-order-unstable containers -----------------------------
  void check_unordered() {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      for (const std::string_view w : {std::string_view("unordered_map"), std::string_view("unordered_set")})
        if (has_word(lines[i].code, w))
          add(Rule::kUnorderedIter, i,
              "iteration-order-unstable container '" + std::string(w) +
                  "': use std::map/std::set or a sorted vector, or annotate "
                  "'archlint: allow(unordered-iter)' if its order never leaks");
    }
  }

  // -- D3: raw-typed simulated-time parameters in public APIs --------------
  void check_raw_time() {
    if (!is_header(path)) return;
    // A raw arithmetic type, an `_ns`-suffixed name, then a parameter-list
    // terminator (',' or ')').  Struct members terminate with ';' and so
    // never match; function *names* ending in `_ns` are followed by '('.
    static const std::regex re(
        R"((?:\b(?:unsigned\s+long\s+long|long\s+long|unsigned\s+long|std::uint64_t|std::int64_t|std::uint32_t|std::int32_t|uint64_t|int64_t|double|float|long)\s+)([A-Za-z_]\w*_ns)\s*(?:=\s*[^,()]+)?[,)])");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      auto begin = std::sregex_iterator(code.begin(), code.end(), re);
      for (auto it = begin; it != std::sregex_iterator(); ++it)
        add(Rule::kRawTime, i,
            "raw simulated-time parameter '" + (*it)[1].str() +
                "': pass sim::TimeNs (src/sim/time.hpp), or annotate "
                "'archlint: allow(raw-time)' for analytic fractional-ns models");
    }
  }

  // -- D4: [[nodiscard]] on const accessors and factories ------------------
  void check_nodiscard() {
    if (!is_header(path)) return;
    if (path.find("src/sim") == std::string_view::npos &&
        path.find("src/core") == std::string_view::npos &&
        path.find("src/obs") == std::string_view::npos)
      return;
    static const std::regex const_member(R"(\)\s*const(\s+noexcept)?\s*(\{|;|$))");
    static const std::regex void_return(R"(^\s*(virtual\s+)?void\b)");
    static const std::regex factory(
        R"(^\s*(?:(?:static|constexpr|inline|friend|virtual)\s+)*([A-Za-z_][\w:]*)\s+((?:make|from)_\w*)\s*\()");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      const bool marked =
          code.find("[[nodiscard]]") != std::string::npos ||
          (i > 0 && lines[i - 1].code.find("[[nodiscard]]") != std::string::npos);
      if (marked) continue;
      if (std::regex_search(code, const_member) && !std::regex_search(code, void_return)) {
        // Name of the member: identifier before the first '('.
        std::string name = "member";
        const std::size_t paren = code.find('(');
        if (paren != std::string::npos && paren > 0) {
          std::size_t b = paren;
          while (b > 0 && is_ident(code[b - 1])) --b;
          if (b < paren) name = code.substr(b, paren - b);
        }
        add(Rule::kNodiscard, i,
            "const accessor '" + name + "' missing [[nodiscard]]");
        continue;
      }
      std::smatch m;
      if (std::regex_search(code, m, factory)) {
        const std::string ret = m[1].str();
        if (ret != "return" && ret != "void" && ret != "throw" && ret != "delete" &&
            ret != "new" && ret != "case" && ret != "goto")
          add(Rule::kNodiscard, i,
              "factory function '" + m[2].str() + "' missing [[nodiscard]]");
      }
    }
  }

  // -- D5: header hygiene ---------------------------------------------------
  void check_header_hygiene() {
    if (!is_header(path)) return;
    auto trimmed = [](const std::string& s) {
      const std::size_t b = s.find_first_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b);
    };
    bool pragma_early = false;
    std::size_t seen = 0;
    for (const Line& l : lines) {
      const std::string t = trimmed(l.code);
      if (t.empty()) continue;
      if (t.rfind("#pragma once", 0) == 0) {
        pragma_early = true;
        break;
      }
      if (++seen >= 5) break;  // must appear within the first 5 code lines
    }
    bool has_namespace = false;
    bool has_file_doc = false;
    for (const Line& l : lines) {
      if (!has_namespace && has_word(l.code, "namespace") &&
          l.code.find("hpc") != std::string::npos)
        has_namespace = true;
      if (!has_file_doc && l.comment.find("\\file") != std::string::npos) has_file_doc = true;
    }
    if (!pragma_early)
      add(Rule::kHeaderHygiene, 0, "header must start with '#pragma once'");
    if (!has_namespace)
      add(Rule::kHeaderHygiene, 0, "header must declare into the hpc:: namespace");
    if (!has_file_doc)
      add(Rule::kHeaderHygiene, 0, "header must carry a '\\file' doc block");
  }
};

}  // namespace

std::string_view id_of(Rule r) noexcept {
  switch (r) {
    case Rule::kAmbientRng: return "ambient-rng";
    case Rule::kUnorderedIter: return "unordered-iter";
    case Rule::kRawTime: return "raw-time";
    case Rule::kNodiscard: return "nodiscard";
    case Rule::kHeaderHygiene: return "header-hygiene";
  }
  return "unknown";
}

std::string format(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + std::string(id_of(f.rule)) + "] " +
         f.message;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text) {
  Scanner s{path, split_lines(text), {}};
  s.check_ambient_rng();
  s.check_unordered();
  s.check_raw_time();
  s.check_nodiscard();
  s.check_header_hygiene();
  return std::move(s.findings);
}

std::vector<Finding> lint_file(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {Finding{Rule::kHeaderHygiene, file.generic_string(), 0, "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(file.generic_string(), buf.str());
}

std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots) {
  std::vector<std::filesystem::path> files;
  for (const std::filesystem::path& root : roots) {
    if (!std::filesystem::exists(root)) continue;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".h" && ext != ".hh" && ext != ".cpp" && ext != ".cc")
        continue;
      bool in_build = false;
      for (const auto& part : entry.path())
        if (part.string().rfind("build", 0) == 0) in_build = true;
      if (!in_build) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> all;
  for (const std::filesystem::path& f : files) {
    std::vector<Finding> one = lint_file(f);
    all.insert(all.end(), std::make_move_iterator(one.begin()),
               std::make_move_iterator(one.end()));
  }
  return all;
}

}  // namespace hpc::lint
