#include "lexer.hpp"

#include <array>
#include <cctype>

namespace hpc::lint {

namespace {

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) noexcept { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\f' || c == '\v';
}

/// Translation-phase-2 view of the source: line splices removed, CR/CRLF
/// normalized to LF, and a per-character map back to the physical line.
struct Spliced {
  std::string text;
  std::vector<std::size_t> line_of;  // line_of[i] = 1-based line of text[i]
  std::size_t line_count = 1;
};

Spliced splice(std::string_view raw) {
  Spliced out;
  out.text.reserve(raw.size());
  out.line_of.reserve(raw.size());
  std::size_t line = 1;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (c == '\r') {
      if (i + 1 < raw.size() && raw[i + 1] == '\n') continue;  // CRLF -> LF
      c = '\n';                                                // lone CR -> LF
    }
    if (c == '\\') {
      std::size_t j = i + 1;
      if (j < raw.size() && raw[j] == '\r') ++j;
      if (j < raw.size() && raw[j] == '\n') {  // line splice: vanish, keep count
        ++line;
        i = j;
        continue;
      }
    }
    out.text += c;
    out.line_of.push_back(line);
    if (c == '\n') ++line;
  }
  out.line_count = line;
  return out;
}

/// The multi-character punctuators the rules care to see as single tokens.
/// Longest-match-first; everything else degrades to one-char punctuators.
constexpr std::array<std::string_view, 25> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "++",  "--",  "+=",  "-=",  "*=",  "/=", "%=", "&=", "|=", "^=", "->", "::"};

struct Lexer {
  const Spliced& sp;
  LexedFile out;
  std::size_t p = 0;
  bool at_line_start = true;
  // #if 0 / #if false skipping: depth of nested conditionals inside the
  // skipped region; 0 means live code.
  int skip_depth = 0;

  explicit Lexer(const Spliced& s) : sp(s) { out.line_count = s.line_count; }

  [[nodiscard]] std::size_t size() const noexcept { return sp.text.size(); }
  [[nodiscard]] char at(std::size_t i) const noexcept {
    return i < sp.text.size() ? sp.text[i] : '\0';
  }
  [[nodiscard]] std::size_t line_at(std::size_t i) const noexcept {
    if (sp.line_of.empty()) return 1;
    return i < sp.line_of.size() ? sp.line_of[i] : sp.line_of.back();
  }

  void comment_char(std::size_t line, char c) {
    if (out.line_comments.size() < line) out.line_comments.resize(line);
    out.line_comments[line - 1] += c;
  }

  void emit(TokKind kind, std::string text, std::size_t line) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  }

  // -- comments --------------------------------------------------------------
  void lex_line_comment() {  // at "//"
    p += 2;
    while (p < size() && at(p) != '\n') comment_char(line_at(p), at(p)), ++p;
  }

  void lex_block_comment() {  // at "/*"
    p += 2;
    while (p < size()) {
      if (at(p) == '*' && at(p + 1) == '/') {
        p += 2;
        return;
      }
      if (at(p) != '\n') comment_char(line_at(p), at(p));
      ++p;
    }
  }

  // -- literals --------------------------------------------------------------
  /// At '"': ordinary string literal.  \p prefix (possibly empty) is an
  /// encoding prefix already consumed.  Unterminated literals close at the
  /// newline so one bad line cannot swallow the rest of the file.
  void lex_string(const std::string& prefix, std::size_t line) {
    std::string text = prefix + '"';
    ++p;
    while (p < size() && at(p) != '\n') {
      const char c = at(p);
      text += c;
      if (c == '\\' && p + 1 < size() && at(p + 1) != '\n') {
        text += at(p + 1);
        p += 2;
        continue;
      }
      ++p;
      if (c == '"') break;
    }
    emit(TokKind::kString, std::move(text), line);
  }

  /// At '"' with a raw-string prefix (R, u8R, ...) already consumed.
  void lex_raw_string(const std::string& prefix, std::size_t line) {
    std::string text = prefix + '"';
    ++p;
    std::string delim;
    while (p < size() && at(p) != '(' && at(p) != '\n' && delim.size() < 16) delim += at(p++);
    text += delim;
    if (at(p) == '(') {
      text += '(';
      ++p;
      const std::string close = ")" + delim + "\"";
      while (p < size()) {
        if (at(p) == ')' && sp.text.compare(p, close.size(), close) == 0) {
          text += close;
          p += close.size();
          break;
        }
        text += at(p);
        ++p;
      }
    }
    emit(TokKind::kString, std::move(text), line);
  }

  void lex_char(const std::string& prefix, std::size_t line) {  // at '\''
    std::string text = prefix + '\'';
    ++p;
    while (p < size() && at(p) != '\n') {
      const char c = at(p);
      text += c;
      if (c == '\\' && p + 1 < size() && at(p + 1) != '\n') {
        text += at(p + 1);
        p += 2;
        continue;
      }
      ++p;
      if (c == '\'') break;
    }
    emit(TokKind::kChar, std::move(text), line);
  }

  void lex_number() {  // pp-number, at digit or '.'+digit
    const std::size_t line = line_at(p);
    std::string text;
    text += at(p);
    ++p;
    while (p < size()) {
      const char c = at(p);
      const char prev = text.back();
      if (is_ident_char(c) || c == '.') {
        text += c;
        ++p;
      } else if ((c == '+' || c == '-') && (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P')) {
        text += c;
        ++p;
      } else if (c == '\'' && is_ident_char(at(p + 1))) {  // digit separator
        text += c;
        ++p;
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, std::move(text), line);
  }

  // -- preprocessor ----------------------------------------------------------
  /// At '#' at the start of a line.  Collects the whole (already spliced)
  /// directive with whitespace collapsed; returns its text.
  std::string collect_directive() {
    std::string text = "#";
    ++p;
    bool pending_space = false;
    while (p < size() && at(p) != '\n') {
      const char c = at(p);
      if (is_space(c)) {
        pending_space = text.size() > 1;  // collapse; none right after '#'
        ++p;
        continue;
      }
      if (c == '/' && at(p + 1) == '/') {
        lex_line_comment();
        break;
      }
      if (c == '/' && at(p + 1) == '*') {
        lex_block_comment();
        pending_space = text.size() > 1;
        continue;
      }
      if (pending_space) text += ' ';
      pending_space = false;
      if (c == '"') {  // e.g. an #include path: copy verbatim
        text += c;
        ++p;
        while (p < size() && at(p) != '\n') {
          text += at(p);
          if (at(p) == '"') {
            ++p;
            break;
          }
          ++p;
        }
        continue;
      }
      text += c;
      ++p;
    }
    return text;
  }

  static bool starts_with(std::string_view s, std::string_view pre) {
    return s.size() >= pre.size() && s.substr(0, pre.size()) == pre;
  }

  /// Handles one directive.  Returns true if the directive was consumed as
  /// conditional-skip bookkeeping (never emitted).
  void handle_directive() {
    const std::size_t line = line_at(p);
    const std::string text = collect_directive();
    if (skip_depth > 0) {
      if (starts_with(text, "#if")) {
        ++skip_depth;
      } else if (text == "#endif" || starts_with(text, "#endif ")) {
        if (--skip_depth == 0) {
          // region closed; nothing to emit
        }
      } else if (skip_depth == 1 &&
                 (text == "#else" || starts_with(text, "#else ") || starts_with(text, "#elif"))) {
        // Conservatively resume scanning at the first alternative branch.
        skip_depth = 0;
      }
      return;
    }
    if (text == "#if 0" || text == "#if false" || text == "#if (0)") {
      skip_depth = 1;
      return;
    }
    emit(TokKind::kDirective, text, line);
  }

  // -- main loop -------------------------------------------------------------
  void run() {
    while (p < size()) {
      const char c = at(p);
      if (c == '\n') {
        at_line_start = true;
        ++p;
        continue;
      }
      if (is_space(c)) {
        ++p;
        continue;
      }
      if (skip_depth > 0) {
        // Dead region: only directives matter; everything else is discarded
        // line by line (comments in dead code are not collected either).
        if (at_line_start && c == '#') {
          handle_directive();
        } else {
          while (p < size() && at(p) != '\n') ++p;
        }
        continue;
      }
      if (at_line_start && c == '#') {
        handle_directive();
        continue;
      }
      at_line_start = false;
      if (c == '/' && at(p + 1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && at(p + 1) == '*') {
        lex_block_comment();
        continue;
      }
      const std::size_t line = line_at(p);
      if (is_ident_start(c)) {
        std::string id;
        while (p < size() && is_ident_char(at(p))) id += at(p++);
        if (at(p) == '"' &&
            (id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR")) {
          lex_raw_string(id, line);
        } else if (at(p) == '"' && (id == "u8" || id == "u" || id == "U" || id == "L")) {
          lex_string(id, line);
        } else if (at(p) == '\'' && (id == "u8" || id == "u" || id == "U" || id == "L")) {
          lex_char(id, line);
        } else {
          emit(TokKind::kIdent, std::move(id), line);
        }
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(at(p + 1)))) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_string("", line);
        continue;
      }
      if (c == '\'') {
        lex_char("", line);
        continue;
      }
      // Punctuator: longest multi-char match, else a single character.
      bool matched = false;
      for (const std::string_view op : kPuncts) {
        if (sp.text.compare(p, op.size(), op) == 0) {
          emit(TokKind::kPunct, std::string(op), line);
          p += op.size();
          matched = true;
          break;
        }
      }
      if (!matched) {
        emit(TokKind::kPunct, std::string(1, c), line);
        ++p;
      }
    }
    if (out.line_comments.size() < out.line_count) out.line_comments.resize(out.line_count);
  }
};

}  // namespace

LexedFile lex(std::string_view text) {
  const Spliced sp = splice(text);
  Lexer lx(sp);
  lx.run();
  return std::move(lx.out);
}

bool is_float_literal(std::string_view number) {
  if (number.empty()) return false;
  const bool hex =
      number.size() > 1 && number[0] == '0' && (number[1] == 'x' || number[1] == 'X');
  if (hex) {  // hex floats exist but must have a binary exponent
    return number.find('p') != std::string_view::npos ||
           number.find('P') != std::string_view::npos;
  }
  if (number.find('.') != std::string_view::npos) return true;
  if (number.find('e') != std::string_view::npos || number.find('E') != std::string_view::npos)
    return true;
  const char last = number.back();
  return last == 'f' || last == 'F';
}

}  // namespace hpc::lint
