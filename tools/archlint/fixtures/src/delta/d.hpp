#pragma once

#include "alpha/a.hpp"
#include "gamma/g.hpp"

/// \file d.hpp
/// Fixture: a *sibling substrate* reach-around — delta may use alpha
/// (`delta: alpha`) but includes gamma too, the lateral edge the main
/// tree's "no substrate includes another substrate" rule forbids.  The
/// alpha include is legal and must not fire.

namespace hpc::fixture_delta {

// archlint: allow(dead-public-api): corpus filler, deliberately uncalled
inline int delta_value() { return 4; }

}  // namespace hpc::fixture_delta
