#pragma once

/// \file g.hpp
/// Fixture: a deliberately rule-clean gamma header; it exists so delta's
/// lateral `gamma/g.hpp` include resolves inside the corpus and the D6
/// edge fires on delta, not on a dangling include.

namespace hpc::fixture_gamma {

// archlint: allow(dead-public-api): corpus filler, deliberately uncalled
inline int gamma_value() { return 3; }

}  // namespace hpc::fixture_gamma
