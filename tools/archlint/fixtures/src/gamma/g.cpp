#include "beta/b.hpp"

/// \file g.cpp
/// Fixture: token-level violations — a raw float equality (D8) and a
/// mutable namespace-scope variable (D9).  The beta include is legal
/// (`gamma: beta`).

namespace hpc::fixture_gamma {

double tolerance = 0.5;

inline bool is_exact(double x) {
  return x == 1.0;
}

}  // namespace hpc::fixture_gamma
