/// \file z.cpp
/// Fixture: D11 `entropy-source` via `std::thread::hardware_concurrency()`.
///
/// Host topology is ambient state just like a clock or an env var: sizing a
/// *result* (rather than an executor) from the core count makes simulation
/// output vary across machines.  The main tree allows exactly one reader —
/// src/exec/policy.cpp, where the value is a default-only worker hint — via
/// the `entropy-allow` list in tools/archlint/semantics.txt; this corpus
/// has no semantics.txt, so the built-in default applies and the call below
/// must fire.  Everything else in the file is deliberately rule-clean, and
/// the function lives in a .cpp (not a src/ header) so D14 stays quiet.

namespace hpc::fixture_zeta {

int default_shard_count(int fallback) {
  const unsigned n = std::thread::hardware_concurrency();  // D11
  return n > 0 ? static_cast<int>(n) : fallback;
}

}  // namespace hpc::fixture_zeta
