#include "epsilon/e.hpp"

/// \file e_impl.cpp
/// Fixture: the entropy/RNG/SIOF half of the semantic corpus —
///
///  - D11 `entropy-source`       `std::getenv` (deliberately a source D1's
///                               token rule does not cover, so the finding
///                               is unambiguously D11's);
///  - D12 `rng-discipline`       an ad-hoc `Rng` root minted from seed
///                               arithmetic (two findings on one line:
///                               the construction and the `seed + k`);
///  - D13 `dynamic-init-global`  a *const* namespace-scope object whose
///                               initializer runs code before main() — D9
///                               is silent because it is const, which is
///                               exactly the gap D13 closes.

namespace hpc::fixture_epsilon {

std::string site_banner();

/// D13: const (so D9 stays quiet) but dynamically initialized.
const std::string kBanner = site_banner();

int read_site(int fallback) {
  const char* site = std::getenv("ARCHIPELAGO_SITE");  // D11
  return site != nullptr ? fallback + 1 : fallback;
}

int make_stream(unsigned seed, int k) {
  sim::Rng rng(seed + k);  // D12: ad-hoc root + seed arithmetic
  return k + rng_mark();
}

int rng_mark() { return 0; }

}  // namespace hpc::fixture_epsilon
