#pragma once

/// \file e.hpp
/// Fixture: semantic-pass (cross-TU) violations — a pointer-keyed std::map
/// and a hash-ordered std::unordered_multiset (both D10: iteration order
/// derives from addresses/hashes, which differ run to run), plus a public
/// function nothing in the corpus ever calls (D14).  unordered_multiset is
/// chosen deliberately: D2 matches only unordered_map/unordered_set, so the
/// finding here is unambiguously the semantic rule's.  No std includes:
/// fixtures are scanned, never compiled, and `#include <map>` style lines
/// would add D2 noise on top of the findings this file pins.

namespace hpc::fixture_epsilon {

struct Device {
  int id = 0;
};

/// D10: ordered map keyed on allocation addresses.
using DeviceOrder = std::map<const Device*, int>;

/// D10: hash-ordered container.
using DeviceBag = std::unordered_multiset<int>;

/// D14: declared in a src/ header with zero call/use sites anywhere.
int orphan_api(int value);

}  // namespace hpc::fixture_epsilon
