#pragma once

#include "beta/b.hpp"

/// \file a.hpp
/// Fixture: the bottom module reaching UP into beta — a layer violation
/// (`alpha:` allows no dependencies) that also closes an include cycle
/// with beta/b.hpp.

namespace hpc::fixture_alpha {

// archlint: allow(dead-public-api): corpus filler, deliberately uncalled
inline int alpha_value() { return 1; }

}  // namespace hpc::fixture_alpha
