#pragma once

#include "alpha/a.hpp"

/// \file b.hpp
/// Fixture: a dependency the spec allows (`beta: alpha`) whose direction
/// nevertheless completes the a.hpp -> b.hpp -> a.hpp include cycle.

namespace hpc::fixture_beta {

// archlint: allow(dead-public-api): corpus filler, deliberately uncalled
inline int beta_value() { return 2; }

}  // namespace hpc::fixture_beta
