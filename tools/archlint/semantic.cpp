#include "semantic.hpp"

#include <fstream>
#include <sstream>

namespace hpc::lint {

namespace {

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

[[nodiscard]] bool under_src(std::string_view path) { return starts_with(path, "src/"); }

[[nodiscard]] bool is_header(std::string_view path) {
  return path.size() >= 2 &&
         (path.ends_with(".hpp") || path.ends_with(".h") || path.ends_with(".hh"));
}

[[nodiscard]] bool allowed_prefix(const std::vector<std::string>& prefixes,
                                  std::string_view path) {
  for (const std::string& p : prefixes)
    if (starts_with(path, p)) return true;
  return false;
}

[[nodiscard]] std::string trim(std::string s) {
  const auto b = s.find_first_not_of(" \t\r");
  const auto e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return {};
  return s.substr(b, e - b + 1);
}

/// Is the joined type head composed only of builtin-arithmetic / size-type /
/// pointer tokens?  Such globals have constant (or zero) initialization when
/// their initializer is literal-only, so D13 leaves them to D9.
[[nodiscard]] bool fundamental_type_head(const std::string& head) {
  std::istringstream in(head);
  std::string w;
  bool any = false;
  while (in >> w) {
    any = true;
    static const std::string_view kOk[] = {
        "const",    "constexpr", "constinit", "volatile", "unsigned", "signed",
        "int",      "long",      "short",     "char",     "bool",     "float",
        "double",   "void",      "wchar_t",   "char8_t",  "char16_t", "char32_t",
        "std",      "size_t",    "ptrdiff_t", "int8_t",   "int16_t",  "int32_t",
        "int64_t",  "uint8_t",   "uint16_t",  "uint32_t", "uint64_t", "uintptr_t",
        "intptr_t", "uintmax_t", "intmax_t",  "*",        "&",        "::"};
    bool ok = false;
    for (const std::string_view k : kOk)
      if (w == k) {
        ok = true;
        break;
      }
    if (!ok) return false;
  }
  return any;
}

void check_containers(const FileSymbols& f, std::vector<Finding>& out) {
  for (const FileSymbols::ContainerUse& u : f.containers) {
    if (u.allowed) continue;
    if (u.unordered) {
      out.push_back({Rule::kNondetContainer, f.path, u.line,
                     "std::" + u.container +
                         " iterates in hash/address order, which differs run to run; use the "
                         "ordered std:: equivalent or a sorted vector"});
    } else if (u.key_pointer) {
      out.push_back({Rule::kNondetContainer, f.path, u.line,
                     "std::" + u.container + " keyed on pointer type '" + u.key +
                         "': iteration order depends on allocation addresses; key on a stable "
                         "id instead"});
    }
  }
}

void check_entropy(const FileSymbols& f, const SemanticConfig& cfg,
                   std::vector<Finding>& out) {
  if (!under_src(f.path) || allowed_prefix(cfg.entropy_allow, f.path)) return;
  for (const FileSymbols::EntropyUse& u : f.entropy) {
    if (u.allowed) continue;
    out.push_back({Rule::kEntropySource, f.path, u.line,
                   "'" + u.what +
                       "' reads ambient entropy; simulation code takes randomness from "
                       "sim::Rng and time from the simulated clock"});
  }
}

void check_rng(const FileSymbols& f, const SemanticConfig& cfg, std::vector<Finding>& out) {
  if (!under_src(f.path) || allowed_prefix(cfg.rng_allow, f.path)) return;
  for (const FileSymbols::RngUse& u : f.rng) {
    if (u.allowed) continue;
    out.push_back({Rule::kRngDiscipline, f.path, u.line,
                   u.what +
                       " outside src/sim/: derive substreams with Rng::child(label) instead "
                       "of minting ad-hoc roots"});
  }
}

void check_globals(const FileSymbols& f, std::vector<Finding>& out) {
  if (!under_src(f.path)) return;
  for (const FileSymbols::Global& g : f.globals) {
    if (g.allowed || g.is_constexpr || g.is_extern_decl) continue;
    const bool fundamental = fundamental_type_head(g.type_head);
    const bool dynamic_init =
        !fundamental || (g.has_initializer && !g.init_literal_only);
    if (!dynamic_init) continue;
    out.push_back({Rule::kDynamicInitGlobal, f.path, g.line,
                   "namespace-scope '" + g.name +
                       "' runs a dynamic initializer before main() (static-init-order "
                       "hazard); make it constexpr/constinit or a function-local static"});
  }
}

void check_dead_api(const SymbolIndex& index, std::vector<Finding>& out) {
  for (const FileSymbols& f : index.files) {
    if (!under_src(f.path) || !is_header(f.path)) continue;
    for (const FileSymbols::Func& fn : f.functions) {
      if (fn.allowed || fn.is_operator || fn.is_defaulted) continue;
      if (fn.name.empty() || fn.name == "main") continue;
      if (fn.name[0] == '~') continue;                       // destructor
      if (index.type_names.count(fn.name) != 0) continue;    // constructor
      if (index.uses_of(fn.name) != 0) continue;
      const std::string qual =
          fn.scope.empty() ? fn.name : fn.scope + "::" + fn.name;
      out.push_back({Rule::kDeadPublicApi, f.path, fn.line,
                     "'" + qual +
                         "' is declared in a src/ header but has no call/use site anywhere "
                         "in the scanned tree; remove it or add a caller/test"});
    }
  }
}

}  // namespace

bool parse_semantics(std::string_view text, SemanticConfig& out, std::string& error) {
  std::vector<std::string> entropy;
  std::vector<std::string> rng;
  bool have_entropy = false;
  bool have_rng = false;

  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string line(text.substr(pos, nl == std::string_view::npos ? nl : nl - pos));
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;

    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(std::move(line));
    if (line.empty()) continue;

    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected 'key: values'";
      return false;
    }
    const std::string key = trim(line.substr(0, colon));
    std::istringstream values(line.substr(colon + 1));
    std::vector<std::string>* target = nullptr;
    if (key == "entropy-allow") {
      target = &entropy;
      have_entropy = true;
    } else if (key == "rng-allow") {
      target = &rng;
      have_rng = true;
    } else {
      error = "line " + std::to_string(lineno) + ": unknown key '" + key + "'";
      return false;
    }
    std::string v;
    while (values >> v) target->push_back(v);
  }

  if (have_entropy) out.entropy_allow = std::move(entropy);
  if (have_rng) out.rng_allow = std::move(rng);
  return true;
}

bool load_semantics(const std::filesystem::path& file, SemanticConfig& out,
                    std::string& error) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(file, ec) || ec) {
    // Opening a directory with ifstream "succeeds" on Linux and reads as
    // empty, which would silently swallow the whole config.
    error = "semantics file '" + file.string() + "' is not a readable file";
    return false;
  }
  std::ifstream in(file);
  if (!in) {
    error = "cannot open semantics file '" + file.string() + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    error = "read error on semantics file '" + file.string() + "'";
    return false;
  }
  return parse_semantics(buf.str(), out, error);
}

std::vector<Finding> check_semantics(const SymbolIndex& index, const RuleSet& rules,
                                     const SemanticConfig& config) {
  std::vector<Finding> out;
  for (const FileSymbols& f : index.files) {
    if (rules.contains(Rule::kNondetContainer)) check_containers(f, out);
    if (rules.contains(Rule::kEntropySource)) check_entropy(f, config, out);
    if (rules.contains(Rule::kRngDiscipline)) check_rng(f, config, out);
    if (rules.contains(Rule::kDynamicInitGlobal)) check_globals(f, out);
  }
  if (rules.contains(Rule::kDeadPublicApi)) check_dead_api(index, out);
  return out;
}

}  // namespace hpc::lint
