#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

/// \file include_graph.hpp
/// archlint's include-graph pass: module layering (D6) and cycle (D7)
/// enforcement over the scanned tree.
///
/// The module dependency DAG DESIGN.md promises (`sim` at the bottom,
/// `obs` depending only on `sim`, the substrates above) is declared once in
/// `tools/archlint/layers.txt` and *proved* here instead of trusted:
///
///     # "<module>: <dep> <dep> ..." — a file in <module> may #include its
///     # own module and the listed modules only.
///     sim:
///     obs: sim
///     net: sim obs
///
/// A module is a directory under `src/` (named by the directory: `net`,
/// `sched`, ...) or a tool (`tools/archlint`, ...).  `tests/`, `bench/`, and
/// `examples/` carry no entry, which makes them unconstrained leaves: D6
/// skips files whose module has no entry, but every scanned file still
/// participates in D7 cycle detection.

namespace hpc::lint {

/// Parsed layering spec: module -> allowed dependency modules, in file
/// order (kept deterministic for reporting).
struct LayerSpec {
  std::vector<std::pair<std::string, std::vector<std::string>>> allow;

  /// Allowed deps for \p module, or nullptr if the module has no entry.
  [[nodiscard]] const std::vector<std::string>* find(std::string_view module) const;
  /// True if \p module has an entry (constrained module).
  [[nodiscard]] bool known(std::string_view module) const { return find(module) != nullptr; }
  [[nodiscard]] bool empty() const noexcept { return allow.empty(); }
};

/// Parses a layering spec ('#' comments, blank lines, "<module>: deps").
/// Returns false and fills \p error on malformed input (unknown dep names
/// are an error too: a typo must not silently allow everything).
[[nodiscard]] bool parse_layers(std::string_view text, LayerSpec& out, std::string& error);

/// Loads and parses a spec file.
[[nodiscard]] bool load_layers(const std::filesystem::path& file, LayerSpec& out,
                               std::string& error);

/// Module of a repo-relative path: "src/net/x.hpp" -> "net",
/// "tools/tracecat/main.cpp" -> "tools/tracecat", "tests/foo.cpp" ->
/// "tests", otherwise the first path component.
[[nodiscard]] std::string module_of(std::string_view rel_path);

/// One scanned file's quoted includes (system includes never constrain
/// layering).
struct FileIncludes {
  std::string rel_path;  ///< repo-relative, generic separators
  struct Include {
    std::string target;      ///< the quoted include string as written
    std::size_t line = 1;    ///< line of the #include directive
    bool allowed = false;    ///< archlint: allow(layer-violation) present
  };
  std::vector<Include> includes;
};

/// Extracts quoted includes (and their D6 allow-annotations) from a lexed
/// file.
[[nodiscard]] FileIncludes extract_includes(std::string rel_path, const LexedFile& lf);

/// D6: every include of a constrained module must stay inside its declared
/// allow-list.  Findings point at the offending #include line.
[[nodiscard]] std::vector<Finding> check_layering(const std::vector<FileIncludes>& files,
                                                  const LayerSpec& spec);

/// D7: the file-level include graph over the scanned set must be acyclic.
/// Each strongly-connected component is reported once, anchored at its
/// lexicographically-smallest file, with the cycle spelled out.
[[nodiscard]] std::vector<Finding> check_cycles(const std::vector<FileIncludes>& files);

}  // namespace hpc::lint
