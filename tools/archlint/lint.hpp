#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

/// \file lint.hpp
/// archlint: Archipelago's determinism-contract static analyzer.
///
/// A token/line-level scanner (no libclang) that enforces the project
/// invariants the simulation kernel's reproducibility guarantee depends on:
///
///  - D1 `ambient-rng`      no ambient nondeterminism: `rand()`,
///                          `std::random_device`, `srand`, wall-clock reads
///                          (`system_clock`, `steady_clock`, `gettimeofday`,
///                          ...) anywhere outside `src/sim/rng.*`.  All
///                          randomness must flow through an explicitly seeded
///                          `hpc::sim::Rng`; all time through the simulated
///                          clock.
///  - D2 `unordered-iter`   no `std::unordered_map`/`std::unordered_set`:
///                          their iteration order is
///                          implementation-dependent, so any loop over one
///                          can silently break bit-for-bit reproducibility.
///  - D3 `raw-time`         public APIs (headers) must pass simulated time as
///                          `sim::TimeNs`, not raw `double`/`uint64_t`
///                          (heuristic: `_ns`-suffixed raw-typed parameters).
///  - D4 `nodiscard`        const accessors and `make_`/`from_` factory
///                          functions in `src/sim`, `src/core`, and
///                          `src/obs` headers must be `[[nodiscard]]` —
///                          silently dropping a simulation observable is
///                          almost always a bug.
///  - D5 `header-hygiene`   every header starts with `#pragma once`, declares
///                          into the `hpc::` namespace, and carries a
///                          `\file` doc block.
///
/// Any rule can be suppressed for one line with an annotation on that line or
/// the line above:
///
///     // archlint: allow(unordered-iter): scratch map, never iterated
///
/// String literals and comments are stripped before pattern matching, so test
/// fixtures that mention forbidden tokens inside strings do not trip the
/// scanner.

namespace hpc::lint {

/// The enforced invariants (see file comment for semantics).
enum class Rule : int {
  kAmbientRng,     ///< D1: ambient randomness / wall-clock reads
  kUnorderedIter,  ///< D2: iteration-order-unstable containers
  kRawTime,        ///< D3: raw-typed `_ns` parameters in public APIs
  kNodiscard,      ///< D4: missing [[nodiscard]] on accessors/factories
  kHeaderHygiene,  ///< D5: pragma once / hpc:: namespace / \file block
};

/// Stable textual id used in reports and `allow(...)` annotations.
[[nodiscard]] std::string_view id_of(Rule r) noexcept;

/// One rule violation at a source location.
struct Finding {
  Rule rule = Rule::kAmbientRng;
  std::string path;     ///< as passed in (tree scans use repo-relative paths)
  std::size_t line = 0; ///< 1-based
  std::string message;
};

/// `path:line: [rule] message` — the canonical report line.
[[nodiscard]] std::string format(const Finding& f);

/// Lints one translation unit given its (possibly fake) path and full text.
/// The path participates in rule scoping: D1 exempts `src/sim/rng.*`, D3/D5
/// apply to `.hpp` files, D4 applies to headers under `src/sim` / `src/core`
/// / `src/obs`.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path, std::string_view text);

/// Lints one file on disk.  Returns findings; IO failures produce a single
/// finding on line 0 so a vanished file cannot pass silently.
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& file);

/// Recursively lints every `.hpp`/`.h`/`.cpp`/`.cc` file under each root,
/// skipping any path with a `build*` component.  Findings are sorted by
/// path, then line.
[[nodiscard]] std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots);

}  // namespace hpc::lint
