#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

/// \file lint.hpp
/// archlint v2: Archipelago's determinism-contract static analyzer.
///
/// A multi-pass analyzer (no libclang) over a real C++ token stream (see
/// lexer.hpp) plus a tree-level include-graph pass (see include_graph.hpp).
/// It enforces the project invariants the simulation kernel's bit-for-bit
/// reproducibility guarantee depends on:
///
///  - D1 `ambient-rng`      no ambient nondeterminism: `rand()`,
///                          `std::random_device`, `srand`, wall-clock reads
///                          (`system_clock`, `steady_clock`, `gettimeofday`,
///                          ...) anywhere outside `src/sim/rng.*`.  All
///                          randomness must flow through an explicitly seeded
///                          `hpc::sim::Rng`; all time through the simulated
///                          clock.
///  - D2 `unordered-iter`   no `std::unordered_map`/`std::unordered_set`:
///                          their iteration order is
///                          implementation-dependent, so any loop over one
///                          can silently break bit-for-bit reproducibility.
///  - D3 `raw-time`         public APIs (headers) must pass simulated time as
///                          `sim::TimeNs`, not raw `double`/`uint64_t`
///                          (heuristic: `_ns`-suffixed raw-typed parameters).
///  - D4 `nodiscard`        const accessors and `make_`/`from_` factory
///                          functions in `src/sim`, `src/core`, and
///                          `src/obs` headers must be `[[nodiscard]]` —
///                          silently dropping a simulation observable is
///                          almost always a bug.
///  - D5 `header-hygiene`   every header starts with `#pragma once`, declares
///                          into the `hpc::` namespace, and carries a
///                          `\file` doc block.
///  - D6 `layer-violation`  a module may `#include` only the modules its
///                          entry in the layering spec (layers.txt) allows:
///                          sim at the bottom, obs depending only on sim,
///                          the archipelago substrates above.  Tree scans
///                          only.
///  - D7 `include-cycle`    the file-level include graph must be acyclic.
///                          Tree scans only.
///  - D8 `float-eq`         no raw `==`/`!=` between floating-point operands
///                          outside `tests/`: exact comparison of computed
///                          doubles is the classic silent cross-platform
///                          reproducibility hazard.
///  - D9 `mutable-global`   no non-const namespace-scope variables in `src/`:
///                          hidden mutable state breaks replayability and
///                          makes runs order-dependent.
///
/// On top of the per-file passes, tree scans run a cross-TU *semantic* pass
/// (see symbols.hpp / semantic.hpp): every file is lexed and indexed first
/// (declarations, definitions, globals, type names, use sites), then five
/// determinism-contract rules judge the whole project index at once:
///
///  - D10 `nondet-container`    any `std::unordered_*` container use, or a
///                              `std::map`/`std::set` keyed on a pointer
///                              type — iteration order depends on addresses,
///                              which differ run to run.
///  - D11 `entropy-source`      `std::random_device`, `*_clock::now`,
///                              `time(`, `rand(`, `getenv` anywhere under
///                              `src/` outside the configured allowlist
///                              (tools/archlint/semantics.txt).
///  - D12 `rng-discipline`      `sim::Rng` construction or seed arithmetic
///                              outside `src/sim/`: substrates must derive
///                              their streams via `Rng::child`, never mint
///                              ad-hoc roots like `Rng(seed + k)`.
///  - D13 `dynamic-init-global` namespace-scope objects in `src/` with
///                              dynamic initializers and no
///                              `constexpr`/`constinit` guarantee — the
///                              classic static-init-order hazard, extending
///                              D9 to const-but-runtime-initialized state.
///  - D14 `dead-public-api`     functions declared in a `src/` header with
///                              zero call/use sites across the entire
///                              scanned tree.  Baseline-suppressed in CI so
///                              existing debt ratchets down instead of
///                              blocking.
///
///  - `io-error`            not a style rule: a file that cannot be read
///                          reports this (and only this) id, and it can be
///                          neither disabled nor baselined away, so a
///                          vanished file can never pass as "clean".  The
///                          CLI exits 3 (not 1) when any is present, so CI
///                          can tell "tree is dirty" from "scan is broken".
///
/// Any rule can be suppressed for one line with an annotation on that line or
/// the line above:
///
///     // archlint: allow(unordered-iter): scratch map, never iterated
///
/// String literals, comments, and `#if 0` regions never produce findings:
/// the lexer keeps them out of the token stream entirely.

namespace hpc::lint {

/// The enforced invariants (see file comment for semantics).
enum class Rule : int {
  kAmbientRng,      ///< D1: ambient randomness / wall-clock reads
  kUnorderedIter,   ///< D2: iteration-order-unstable containers
  kRawTime,         ///< D3: raw-typed `_ns` parameters in public APIs
  kNodiscard,       ///< D4: missing [[nodiscard]] on accessors/factories
  kHeaderHygiene,   ///< D5: pragma once / hpc:: namespace / \file block
  kLayerViolation,  ///< D6: include crossing the declared layering spec
  kIncludeCycle,    ///< D7: cycle in the file-level include graph
  kFloatEq,           ///< D8: raw ==/!= between floating-point operands
  kMutableGlobal,     ///< D9: non-const namespace-scope variable in src/
  kNondetContainer,   ///< D10: unordered container / pointer-keyed map or set
  kEntropySource,     ///< D11: entropy source under src/ (getenv, ::now, ...)
  kRngDiscipline,     ///< D12: ad-hoc Rng root or seed arithmetic outside src/sim
  kDynamicInitGlobal, ///< D13: dynamic initializer at namespace scope in src/
  kDeadPublicApi,     ///< D14: src/ header function with zero use sites
  kIoError,           ///< unreadable input; never maskable
};

inline constexpr int kRuleCount = 15;

/// Stable textual id used in reports and `allow(...)` annotations.
[[nodiscard]] std::string_view id_of(Rule r) noexcept;

/// Reverse of id_of().  Accepts both the textual ids ("dead-public-api")
/// and the short rule numbers ("D14"), so `--enable D10,D11` works the way
/// the docs spell the rules.  Returns false for unknown ids.
[[nodiscard]] bool rule_from_id(std::string_view id, Rule& out) noexcept;

/// Which rules run.  `io-error` is reported regardless of the set: an
/// unreadable file must never scan as clean.
struct RuleSet {
  std::uint32_t bits = (1u << kRuleCount) - 1;

  [[nodiscard]] static RuleSet all() noexcept { return RuleSet{}; }
  [[nodiscard]] static RuleSet none() noexcept { return RuleSet{0}; }
  void enable(Rule r) noexcept { bits |= 1u << static_cast<int>(r); }
  void disable(Rule r) noexcept { bits &= ~(1u << static_cast<int>(r)); }
  [[nodiscard]] bool contains(Rule r) const noexcept {
    return r == Rule::kIoError || (bits & (1u << static_cast<int>(r))) != 0;
  }
};

/// One rule violation at a source location.
struct Finding {
  Rule rule = Rule::kAmbientRng;
  std::string path;     ///< repo-relative for tree scans with a root
  std::size_t line = 1; ///< 1-based; whole-file findings point at line 1
  std::string message;
};

/// `path:line: [rule] message` — the canonical report line.
[[nodiscard]] std::string format(const Finding& f);

/// Per-file analysis options.
struct Options {
  RuleSet rules = RuleSet::all();
};

/// Tree-scan options.  D6/D7 run only when `layers_file` is set (they need
/// the whole scanned set, not one file); D10-D14 run whenever enabled (the
/// index is built from the scanned set itself).
struct TreeOptions {
  RuleSet rules = RuleSet::all();
  /// Repository root: findings and module names are reported relative to it.
  /// Empty = report paths exactly as passed and skip module mapping.
  std::filesystem::path root;
  /// Layering spec (see tools/archlint/layers.txt).  Empty = skip D6/D7.
  std::filesystem::path layers_file;
  /// Semantic-pass allowlist config (see tools/archlint/semantics.txt).
  /// Empty = the built-in defaults (src/sim/rng.* may read entropy,
  /// src/sim/ may construct Rng roots).
  std::filesystem::path semantics_file;
  /// Worker threads for phase 1 (read + lex + per-file rules + indexing).
  /// Findings are merged and sorted after the barrier, so the report is
  /// byte-identical at any job count.  Values < 2 scan serially.
  int jobs = 1;
};

/// Does `archlint: allow(<rule>...)` on \p line or the line above cover \p r?
/// Exposed for the include-graph pass; rule passes use it via their scanner.
[[nodiscard]] bool line_allows(const LexedFile& lf, Rule r, std::size_t line);

/// Lints one translation unit given its (possibly fake) path and full text.
/// The path participates in rule scoping: D1 exempts `src/sim/rng.*`, D3/D5
/// apply to `.hpp` files, D4 applies to headers under `src/sim` / `src/core`
/// / `src/obs`, D8 skips `tests/`, D9 applies under `src/` only.  D6/D7 need
/// a tree and do not run here.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                               const Options& opts);
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path, std::string_view text);

/// Lints one file on disk.  IO failures produce a single `io-error` finding
/// so a vanished file cannot pass silently.
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& file,
                                             const Options& opts);
[[nodiscard]] std::vector<Finding> lint_file(const std::filesystem::path& file);

/// Recursively lints every `.hpp`/`.h`/`.hh`/`.cpp`/`.cc` file under each
/// root, skipping any path with a `build*` component and — below the given
/// roots — any `fixtures` component (committed violation corpora are data,
/// not code; pass such a directory as a root to scan it deliberately).
/// Runs the per-file rules on every file plus, when `opts.layers_file` is
/// set, the include-graph passes (D6/D7) over the whole set.  Findings are
/// sorted by path, then line, then rule.
[[nodiscard]] std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots,
                                             const TreeOptions& opts);
[[nodiscard]] std::vector<Finding> lint_tree(const std::vector<std::filesystem::path>& roots);

}  // namespace hpc::lint
