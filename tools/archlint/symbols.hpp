#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

/// \file symbols.hpp
/// archlint's cross-TU symbol indexer (the v3 semantic layer).
///
/// The token-stream rules (lint.hpp D1-D9) judge one file at a time; the
/// determinism-contract rules D10-D14 (semantic.hpp) need to see the whole
/// project at once — "is this header function ever called?", "who constructs
/// RNG roots?".  This indexer walks each file's existing token stream (no
/// second parse, no libclang) and extracts a deterministic per-file record:
///
///  - **functions** — free and member declarations *and* definitions,
///    including out-of-line `Type::name(...)` bodies, template functions,
///    constructors/destructors and operators, each keyed by file:line with
///    its enclosing `namespace::Type` scope chain;
///  - **globals** — namespace-scope variable definitions with their
///    cv/constexpr qualifiers and an initializer classification (literal-only
///    vs. runs-code), which is what D13 judges;
///  - **types** — class/struct/union/enum names (used to recognize
///    constructors so D14 never flags them);
///  - **use sites** — qualified container instantiations (`std::map<K*, V>`),
///    entropy reads (`getenv`, `steady_clock::now`, ...), `sim::Rng`
///    construction / seed arithmetic, and a per-identifier mention count that
///    makes "zero call/use sites anywhere" decidable without a type system.
///
/// `SymbolIndex::build` merges per-file records into the project-wide index:
/// files sorted by path, mention counts accumulated, so the index — and every
/// rule verdict derived from it — is byte-deterministic for a given tree no
/// matter how many indexing threads produced the records.
///
/// The extractor is scope-aware but type-unaware: it tracks namespace /
/// class / enum nesting and constructor-initializer lists, skips function
/// bodies structurally (mention counting still sees every token), and
/// degrades to "record nothing" rather than guessing when a statement does
/// not look like a declaration.  Every heuristic errs toward *not* flagging:
/// an unrecognized construct becomes an extra mention (keeping an API
/// "alive"), never a phantom declaration.

namespace hpc::lint {

/// Everything extracted from one translation unit.
struct FileSymbols {
  std::string path;  ///< as reported (repo-relative in tree scans)

  /// One function declaration or definition.
  struct Func {
    std::string name;       ///< unqualified; "operator==", "~X" kept verbatim
    std::string scope;      ///< enclosing qualification, e.g. "hpc::net::FlowSim"
    std::size_t line = 1;
    bool is_definition = false;    ///< has a body (or = default / = delete)
    bool is_defaulted = false;     ///< `= default` / `= delete`
    bool is_operator = false;      ///< operator overload or conversion
    bool allowed = false;          ///< archlint: allow(dead-public-api) on site
  };
  std::vector<Func> functions;

  /// One namespace-scope variable definition (or extern declaration).
  struct Global {
    std::string name;
    std::string type_head;  ///< declaration tokens left of the name, joined
    std::size_t line = 1;
    bool is_const = false;
    bool is_constexpr = false;     ///< constexpr / constinit / consteval
    bool is_extern_decl = false;   ///< `extern` without an initializer
    bool has_initializer = false;
    bool init_literal_only = false;  ///< initializer is literals/signs only
    bool allowed = false;            ///< allow(dynamic-init-global) on site
  };
  std::vector<Global> globals;

  /// One class/struct/union/enum name introduction.
  struct Type {
    std::string name;
    std::size_t line = 1;
  };
  std::vector<Type> types;

  /// One `std::` associative-container use site.
  struct ContainerUse {
    std::string container;   ///< "map", "unordered_multiset", ...
    std::string key;         ///< first template argument, "" when absent
    std::size_t line = 1;
    bool unordered = false;  ///< any std::unordered_* family member
    bool key_pointer = false;  ///< first template argument is a pointer type
    bool allowed = false;      ///< allow(nondet-container) on site
  };
  std::vector<ContainerUse> containers;

  /// One entropy-source read (D11's evidence).
  struct EntropyUse {
    std::string what;  ///< "getenv", "steady_clock::now", ...
    std::size_t line = 1;
    bool allowed = false;  ///< allow(entropy-source) on site
  };
  std::vector<EntropyUse> entropy;

  /// One ad-hoc RNG root or seed-arithmetic site (D12's evidence).
  struct RngUse {
    std::string what;  ///< "Rng construction" or "seed arithmetic"
    std::size_t line = 1;
    bool allowed = false;  ///< allow(rng-discipline) on site
  };
  std::vector<RngUse> rng;

  /// Identifier -> number of occurrences in this file's token stream
  /// (directives excluded), sorted by name.  The raw material for D14.
  std::vector<std::pair<std::string, std::size_t>> mentions;
};

/// Indexes one lexed file.  Never fails: unrecognizable constructs are
/// skipped conservatively (see file comment).
[[nodiscard]] FileSymbols extract_symbols(std::string path, const LexedFile& lf);

/// The merged project-wide index.
struct SymbolIndex {
  std::vector<FileSymbols> files;  ///< sorted by path

  std::map<std::string, std::size_t> mentions;       ///< ident -> total count
  std::map<std::string, std::size_t> decl_mentions;  ///< func name -> decl/def records
  std::set<std::string> type_names;                  ///< all type introductions

  /// Builds the index: sorts \p files by path (ties broken arbitrarily but
  /// the scan never feeds duplicates) and accumulates the global maps.
  [[nodiscard]] static SymbolIndex build(std::vector<FileSymbols> files);

  /// Mentions of \p name beyond its own declarations/definitions — the
  /// number of places that *use* the function.  0 for unknown names.
  [[nodiscard]] std::size_t uses_of(std::string_view name) const;
};

}  // namespace hpc::lint
