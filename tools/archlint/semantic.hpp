#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"
#include "symbols.hpp"

/// \file semantic.hpp
/// archlint v3's determinism-contract rules D10-D14, judged over the merged
/// cross-TU SymbolIndex (symbols.hpp) instead of one file's token stream:
///
///  - D10 `nondet-container`    any `std::unordered_*` associative container,
///                              or a `std::map`/`std::set`/`multi*` keyed on
///                              a pointer type.  Both iterate in an order
///                              derived from addresses, which differ run to
///                              run — the exact hazard the engine digest
///                              guarantee cannot survive.
///  - D11 `entropy-source`      `std::random_device`, `system_clock` /
///                              `steady_clock` / `high_resolution_clock`
///                              `::now`, `time(`, `rand(`/`srand(`, `getenv`
///                              anywhere under `src/`.  Simulation code gets
///                              randomness from `sim::Rng` and time from the
///                              simulated clock; the host environment is not
///                              an input.
///  - D12 `rng-discipline`      `Rng` construction or seed arithmetic
///                              (`seed + k` style) outside `src/sim/`.
///                              Substrates must derive their streams with
///                              `Rng::child(label)` so stream identity is
///                              structural, not positional.
///  - D13 `dynamic-init-global` namespace-scope objects under `src/` whose
///                              initializer runs code before main() without a
///                              `constexpr`/`constinit` guarantee — the
///                              static-initialization-order hazard D9 does
///                              not see when the global is `const`.
///  - D14 `dead-public-api`     functions declared in a `src/` header with
///                              zero call/use sites across the whole scanned
///                              tree.  Judged from the index's mention
///                              counts; every heuristic errs toward "alive"
///                              (operators, constructors, `main`, defaulted
///                              members are never flagged).  Intended to be
///                              baseline-ratcheted, not zero from day one.
///
/// D11/D12 take path-prefix allowlists from a layers.txt-style config file
/// (tools/archlint/semantics.txt); the built-in defaults match the repo
/// layout (`src/sim/rng.*` may read entropy, `src/sim/` may mint Rng roots).

namespace hpc::lint {

/// Path-prefix allowlists for the semantic pass.  Prefixes are compared
/// against the repo-relative path with '/' separators, so `src/sim/` covers
/// the module and `src/sim/rng.` covers exactly rng.hpp/rng.cpp.
struct SemanticConfig {
  /// Files allowed to read ambient entropy (D11 skips them).
  std::vector<std::string> entropy_allow = {"src/sim/rng."};
  /// Files allowed to construct Rng roots / do seed arithmetic (D12).
  std::vector<std::string> rng_allow = {"src/sim/"};
};

/// Parses semantics.txt text:
///
///     # comment
///     entropy-allow: src/sim/rng.
///     rng-allow: src/sim/ tools/archlint/fixtures/
///
/// A key that appears replaces that built-in default (empty value list =
/// allow nothing).  Unknown keys are errors so typos cannot silently widen
/// the contract.
[[nodiscard]] bool parse_semantics(std::string_view text, SemanticConfig& out,
                                   std::string& error);

/// Loads and parses a semantics file from disk.
[[nodiscard]] bool load_semantics(const std::filesystem::path& file, SemanticConfig& out,
                                  std::string& error);

/// Runs D10-D14 over the merged index.  Only rules present in \p rules fire;
/// per-site `archlint: allow(...)` annotations were already resolved by the
/// extractor (the `allowed` flags).  Findings come back unsorted; the tree
/// scan sorts the combined set.
[[nodiscard]] std::vector<Finding> check_semantics(const SymbolIndex& index,
                                                   const RuleSet& rules,
                                                   const SemanticConfig& config);

}  // namespace hpc::lint
