#include "symbols.hpp"

#include <algorithm>
#include <utility>

#include "lint.hpp"

/// \file symbols.cpp
/// The cross-TU symbol extractor: a scope-aware, type-unaware walk of the
/// lexed token stream.  Three passes per file:
///
///  1. mention counting — every identifier token (directives excluded);
///  2. pattern uses — std:: container instantiations, entropy reads, Rng
///     construction and seed arithmetic (flat scan, no scope needed);
///  3. structural walk — namespace/class scopes, statement splitting with
///     constructor-initializer-list awareness, classification of each
///     declaration-scope statement as namespace / type / function /
///     variable.
///
/// Heuristics err toward recording *less*: a statement that does not look
/// like a declaration contributes mentions only, which can only keep an API
/// alive (D14) or leave a global unflagged — never invent a finding.

namespace hpc::lint {

namespace {

bool word_in(const std::string& w, std::initializer_list<std::string_view> set) {
  for (const std::string_view s : set)
    if (w == s) return true;
  return false;
}

/// Declaration scenery that may precede a type or declarator.
bool is_specifier(const std::string& w) {
  return word_in(w, {"inline", "static", "constexpr", "constinit", "consteval", "extern",
                     "virtual", "explicit", "friend", "typename", "mutable", "thread_local",
                     "export", "register", "volatile"});
}

/// Words that can never be a declared function's name.
bool is_reserved_name(const std::string& w) {
  return word_in(w, {"if",       "for",     "while",    "switch",   "return",  "sizeof",
                     "alignof",  "alignas", "decltype", "noexcept", "catch",   "new",
                     "delete",   "throw",   "co_await", "co_return", "co_yield", "requires",
                     "static_assert", "case", "do", "else", "goto", "int", "long", "short",
                     "char", "bool", "float", "double", "void", "unsigned", "signed", "auto",
                     "wchar_t", "char8_t", "char16_t", "char32_t", "const", "constexpr"});
}

bool is_container_word(const std::string& w) {
  return word_in(w, {"map", "set", "multimap", "multiset", "unordered_map", "unordered_set",
                     "unordered_multimap", "unordered_multiset"});
}

bool contains_seed(const std::string& w) {
  std::string low;
  low.reserve(w.size());
  for (const char c : w) low += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  return low.find("seed") != std::string::npos;
}

bool is_arith_punct(const std::string& w) {
  return word_in(w, {"+", "-", "*", "^", "%", "<<", ">>", "+=", "-=", "*=", "^=", "%="});
}

class Extractor {
 public:
  Extractor(std::string path, const LexedFile& lf) : lf_(lf) { out_.path = std::move(path); }

  FileSymbols run() {
    collect_mentions();
    collect_uses();
    walk();
    return std::move(out_);
  }

 private:
  struct Frame {
    enum Kind { kNamespace, kType, kExtern } kind = kNamespace;
    std::string name;
  };

  const LexedFile& lf_;
  FileSymbols out_;
  std::vector<Frame> stack_;

  [[nodiscard]] std::size_t ntok() const noexcept { return lf_.tokens.size(); }
  [[nodiscard]] const Token& tok(std::size_t i) const noexcept { return lf_.tokens[i]; }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const noexcept {
    return i < ntok() && tok(i).text == text;
  }
  [[nodiscard]] bool is_ident(std::size_t i) const noexcept {
    return i < ntok() && tok(i).kind == TokKind::kIdent;
  }

  [[nodiscard]] std::string current_scope() const {
    std::string s;
    for (const Frame& f : stack_) {
      if (f.name.empty()) continue;
      if (!s.empty()) s += "::";
      s += f.name;
    }
    return s;
  }

  // -- pass 1: mentions ------------------------------------------------------

  void collect_mentions() {
    std::map<std::string, std::size_t> counts;
    for (const Token& t : lf_.tokens)
      if (t.kind == TokKind::kIdent) ++counts[t.text];
    out_.mentions.assign(counts.begin(), counts.end());
  }

  // -- pass 2: pattern uses --------------------------------------------------

  void add_entropy(std::string what, std::size_t line) {
    out_.entropy.push_back(
        {std::move(what), line, line_allows(lf_, Rule::kEntropySource, line)});
  }

  void add_rng(std::string what, std::size_t line) {
    out_.rng.push_back({std::move(what), line, line_allows(lf_, Rule::kRngDiscipline, line)});
  }

  /// Parses the first template argument after the '<' at \p open into \p u.
  void parse_first_arg(std::size_t open, FileSymbols::ContainerUse& u) const {
    int angle = 0;
    int depth = 0;
    for (std::size_t j = open; j < ntok(); ++j) {
      const std::string& w = tok(j).text;
      if (tok(j).kind == TokKind::kPunct) {
        if (w == "<") {
          ++angle;
          if (angle == 1) continue;  // the container's own '<'
        } else if (w == ">") {
          if (--angle <= 0) break;
        } else if (w == ">>") {
          angle -= 2;
          if (angle <= 0) break;
        } else if (w == "(" || w == "[") {
          ++depth;
        } else if (w == ")" || w == "]") {
          if (depth > 0) --depth;
        } else if (w == "," && angle == 1 && depth == 0) {
          break;  // end of the key argument
        }
        if (w == "*" && angle == 1 && depth == 0) u.key_pointer = true;
      }
      if (!u.key.empty()) u.key += ' ';
      u.key += w;
    }
  }

  void collect_uses() {
    for (std::size_t i = 0; i < ntok(); ++i) {
      const Token& t = tok(i);
      if (t.kind != TokKind::kIdent) continue;
      const std::string& w = t.text;

      if (is_container_word(w) && i >= 2 && is(i - 1, "::") && is_ident(i - 2) &&
          tok(i - 2).text == "std") {
        FileSymbols::ContainerUse u;
        u.container = w;
        u.line = t.line;
        u.unordered = w.rfind("unordered_", 0) == 0;
        if (is(i + 1, "<")) parse_first_arg(i + 1, u);
        u.allowed = line_allows(lf_, Rule::kNondetContainer, t.line);
        out_.containers.push_back(std::move(u));
        continue;
      }

      // `obj.time(...)`, `Clock::time(...)`, `~Rng()` are member access /
      // destructors, not entropy reads or root minting — but a leading
      // `std::` is qualification of the real thing and must still count.
      const bool member_access =
          i > 0 &&
          (is(i - 1, ".") || is(i - 1, "->") || is(i - 1, "~") ||
           (is(i - 1, "::") && !(i >= 2 && is_ident(i - 2) && tok(i - 2).text == "std")));
      if (w == "random_device") {
        add_entropy("std::random_device", t.line);
      } else if (w == "getenv" || w == "secure_getenv") {
        add_entropy(w, t.line);
      } else if ((w == "rand" || w == "srand") && is(i + 1, "(") && !member_access) {
        add_entropy(w + "()", t.line);
      } else if (w == "time" && is(i + 1, "(") && !is(i + 2, ")") && !member_access) {
        add_entropy("time()", t.line);
      } else if (w == "system_clock" || w == "steady_clock" || w == "high_resolution_clock") {
        if (is(i + 1, "::") && is_ident(i + 2) && tok(i + 2).text == "now")
          add_entropy(w + "::now", t.line);
        else
          add_entropy(w, t.line);
      } else if (w == "hardware_concurrency") {
        // Host topology is ambient state too: a core count feeding anything
        // but executor sizing makes output vary across machines.  The name is
        // distinctive enough that the member-access guard would only hide the
        // canonical `std::thread::hardware_concurrency()` spelling, so it is
        // deliberately not applied here.
        add_entropy("hardware_concurrency", t.line);
      }

      // For Rng the qualified spelling (`sim::Rng(...)`) is the canonical
      // violation, so only a destructor tilde suppresses the pattern;
      // `Rng::child(...)` never matches (next token is "::", not a call).
      const bool dtor_tilde = i > 0 && is(i - 1, "~");
      if (w == "Rng" && !dtor_tilde) {
        if (is(i + 1, "(") || is(i + 1, "{")) {
          add_rng("Rng(...) construction", t.line);
        } else if (is_ident(i + 1) && (is(i + 2, "(") || is(i + 2, "{")) && !is(i + 3, ")") &&
                   !is(i + 3, "}")) {
          add_rng("Rng " + tok(i + 1).text + "(...) construction", t.line);
        }
      }
      if (contains_seed(w)) {
        const bool prev_arith = i > 0 && tok(i - 1).kind == TokKind::kPunct &&
                                is_arith_punct(tok(i - 1).text);
        const bool next_arith = i + 1 < ntok() && tok(i + 1).kind == TokKind::kPunct &&
                                is_arith_punct(tok(i + 1).text);
        if (prev_arith || next_arith) add_rng("seed arithmetic ('" + w + "')", t.line);
      }
    }
  }

  // -- pass 3: structural walk -----------------------------------------------

  /// \p j indexes a '{'; returns the index just past its matching '}'.
  [[nodiscard]] std::size_t skip_braces(std::size_t j) const {
    int depth = 0;
    for (; j < ntok(); ++j) {
      if (tok(j).kind != TokKind::kPunct) continue;
      if (tok(j).text == "{") ++depth;
      else if (tok(j).text == "}" && --depth == 0) return j + 1;
    }
    return j;
  }

  /// \p j indexes the first '[' of an attribute; returns the index past it.
  [[nodiscard]] std::size_t skip_attr(std::size_t j) const {
    int depth = 0;
    for (; j < ntok(); ++j) {
      if (tok(j).text == "[") ++depth;
      else if (tok(j).text == "]" && --depth == 0) return j + 1;
    }
    return j;
  }

  /// \p j indexes a '('; returns the index just past its matching ')'.
  [[nodiscard]] std::size_t skip_parens(std::size_t j) const {
    int depth = 0;
    for (; j < ntok(); ++j) {
      if (tok(j).text == "(") ++depth;
      else if (tok(j).text == ")" && --depth == 0) return j + 1;
    }
    return j;
  }

  /// \p j indexes a '<'; returns the index just past its matching '>'.
  [[nodiscard]] std::size_t skip_angles(std::size_t j) const {
    int depth = 0;
    for (; j < ntok(); ++j) {
      const std::string& w = tok(j).text;
      if (w == "<") ++depth;
      else if (w == ">") {
        if (--depth == 0) return j + 1;
      } else if (w == ">>") {
        depth -= 2;
        if (depth <= 0) return j + 1;
      }
    }
    return j;
  }

  /// Finds the end of the declaration-scope statement starting at \p b.
  /// Sets \p delim to the terminating token (';', '{', or '}') and returns
  /// its index; returns ntok() when the tail is unterminated.  Constructor
  /// member-initializer brace-inits (`Foo() : a_{1} {`) are treated as
  /// nested so the function-body '{' is the one that terminates.
  [[nodiscard]] std::size_t statement_end(std::size_t b, char& delim) const {
    int depth = 0;           // () and []
    bool seen_close = false;  // a parameter list closed at top level
    bool init_list = false;   // past `) :` — constructor initializers
    for (std::size_t j = b; j < ntok(); ++j) {
      const Token& t = tok(j);
      if (t.kind != TokKind::kPunct) continue;
      const std::string& w = t.text;
      if (w == "(" || w == "[") {
        ++depth;
      } else if (w == ")") {
        if (depth > 0 && --depth == 0) seen_close = true;
      } else if (w == "]") {
        if (depth > 0) --depth;
      } else if (w == ":" && depth == 0 && seen_close) {
        init_list = true;
      } else if (depth == 0 && (w == ";" || w == "}")) {
        delim = w[0];
        return j;
      } else if (w == "{" && depth == 0) {
        if (init_list && j > b &&
            (is_ident(j - 1) || is(j - 1, ",") || is(j - 1, ":") || is(j - 1, ">"))) {
          // member brace-init inside the ctor-init list: skip it inline
          std::size_t close = skip_braces(j);
          if (close == 0 || close <= j) break;
          j = close - 1;
          continue;
        }
        delim = '{';
        return j;
      }
    }
    delim = '\0';
    return ntok();
  }

  void walk() {
    std::size_t i = 0;
    while (i < ntok()) {
      const Token& t = tok(i);
      if (t.kind == TokKind::kDirective || (t.kind == TokKind::kPunct && t.text == ";")) {
        ++i;
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        if (!stack_.empty()) stack_.pop_back();
        ++i;
        continue;
      }
      char delim = '\0';
      const std::size_t e = statement_end(i, delim);
      if (e >= ntok()) break;  // unterminated tail
      if (delim == '}') {      // malformed fragment; resync at the close
        i = e;
        continue;
      }
      i = classify(i, e, delim);
    }
  }

  /// Consumes a statement nothing should be extracted from.
  [[nodiscard]] std::size_t skip_statement(std::size_t e, char delim) const {
    return delim == '{' ? skip_braces(e) : e + 1;
  }

  [[nodiscard]] std::size_t classify(std::size_t b, std::size_t e, char delim) {
    // `public:` / `private:` / `protected:` prefixes inside class bodies.
    while (b + 1 < e && is_ident(b) &&
           word_in(tok(b).text, {"public", "private", "protected"}) && is(b + 1, ":"))
      b += 2;
    if (b >= e) return e + 1;

    const std::string& head = tok(b).text;
    if (head == "extern" && delim == '{' && b + 1 < e &&
        tok(b + 1).kind == TokKind::kString) {
      stack_.push_back(Frame{Frame::kExtern, ""});  // extern "C" { ... }
      return e + 1;
    }
    if (word_in(head, {"using", "typedef", "static_assert", "friend", "asm", "concept",
                       "import", "module", "goto"}))
      return skip_statement(e, delim);

    // `template <...>` prefix: classify what follows it.
    std::size_t p = b;
    if (head == "template" && is(b + 1, "<")) {
      p = skip_angles(b + 1);
      if (p >= e) return skip_statement(e, delim);
    }

    // Strip declaration scenery; a friend declaration is never extracted.
    bool saw_friend = false;
    while (p < e) {
      if (is_ident(p) && is_specifier(tok(p).text)) {
        saw_friend = saw_friend || tok(p).text == "friend";
        ++p;
        continue;
      }
      if (is(p, "[") && is(p + 1, "[")) {
        p = skip_attr(p);
        continue;
      }
      if (is_ident(p) && tok(p).text == "alignas" && is(p + 1, "(")) {
        p = skip_parens(p + 1);
        continue;
      }
      break;
    }
    if (p >= e) return skip_statement(e, delim);
    if (saw_friend) return skip_statement(e, delim);

    const std::string& key = tok(p).text;
    if (key == "namespace") return enter_namespace(p, e, delim);
    if (key == "class" || key == "struct" || key == "union" || key == "enum")
      return enter_type(p, e, delim);

    std::size_t name_idx = e;
    const std::size_t paren = find_fn_paren(p, e, name_idx);
    if (paren < e) return record_function(b, p, name_idx, paren, e, delim);
    return record_variable(b, p, e, delim);
  }

  [[nodiscard]] std::size_t enter_namespace(std::size_t p, std::size_t e, char delim) {
    if (delim != '{') return e + 1;  // alias (`namespace a = b;`) or malformed
    std::string name;
    for (std::size_t j = p + 1; j < e; ++j)
      if (is_ident(j)) {
        if (!name.empty()) name += "::";
        name += tok(j).text;
      }
    stack_.push_back(Frame{Frame::kNamespace, std::move(name)});
    return e + 1;
  }

  [[nodiscard]] std::size_t enter_type(std::size_t p, std::size_t e, char delim) {
    const std::string key = tok(p).text;
    std::size_t q = p + 1;
    if (key == "enum" && q < e && is_ident(q) &&
        (tok(q).text == "class" || tok(q).text == "struct"))
      ++q;
    while (q < e && is(q, "[") && is(q + 1, "[")) q = skip_attr(q);
    std::string name;
    std::size_t name_line = tok(p).line;
    if (q < e && is_ident(q)) {
      name = tok(q).text;
      name_line = tok(q).line;
    }
    if (!name.empty()) out_.types.push_back({name, name_line});
    if (delim != '{') return e + 1;  // forward declaration / member pointer decl
    if (key == "enum") return skip_braces(e);  // enumerators are not indexed
    stack_.push_back(Frame{Frame::kType, std::move(name)});
    return e + 1;  // walk the members
  }

  /// Finds the declarator '(' at nesting level 0 in [p, e).  On success
  /// returns its index and sets \p name_idx to the function-name token
  /// (the ident, or the punctuator of an `operator<` style name).  Stops at
  /// a top-level '=' (everything past it is an initializer, so a '(' there
  /// is a call).  Returns \p e when the statement is not a function.
  [[nodiscard]] std::size_t find_fn_paren(std::size_t p, std::size_t e,
                                          std::size_t& name_idx) const {
    int depth = 0;  // (), [], and best-effort <>
    for (std::size_t j = p; j < e; ++j) {
      const Token& t = tok(j);
      if (t.kind != TokKind::kPunct) continue;
      const std::string& w = t.text;
      const bool after_operator = j > p && is_ident(j - 1) && tok(j - 1).text == "operator";
      if (w == "(") {
        if (depth == 0 && j > p) {
          if (is_ident(j - 1)) {
            const std::string& cand = tok(j - 1).text;
            if (cand == "operator" || !is_reserved_name(cand)) {
              name_idx = j - 1;
              return j;
            }
          } else if (j >= 2 && is_ident(j - 2) && tok(j - 2).text == "operator") {
            name_idx = j - 1;  // operator== and friends: the punct token
            return j;
          }
        }
        ++depth;
      } else if (w == ")" || w == "]") {
        if (depth > 0) --depth;
      } else if (w == "[") {
        ++depth;
      } else if (w == "=" && depth == 0) {
        return e;  // initializer follows; not a function declaration
      } else if (w == "<" && !after_operator) {
        ++depth;
      } else if (w == ">" && !after_operator) {
        if (depth > 0) --depth;
      } else if (w == ">>" && !after_operator) {
        depth -= depth >= 2 ? 2 : depth;
      }
    }
    return e;
  }

  [[nodiscard]] std::size_t record_function(std::size_t b, std::size_t p, std::size_t name_idx,
                                            std::size_t paren, std::size_t e, char delim) {
    FileSymbols::Func fn;
    fn.line = tok(name_idx).line;

    // Name: ident, `operator<punct>`, conversion operator, or destructor.
    if (is_ident(name_idx) && tok(name_idx).text == "operator") {
      fn.name = "operator()";
      fn.is_operator = true;
    } else if (!is_ident(name_idx)) {
      fn.name = "operator" + tok(name_idx).text;
      fn.is_operator = true;
    } else {
      fn.name = tok(name_idx).text;
      if (name_idx >= 1 && is(name_idx - 1, "~")) fn.name = "~" + fn.name;
      if (name_idx >= 1 && is_ident(name_idx - 1) && tok(name_idx - 1).text == "operator")
        fn.is_operator = true;  // conversion operator: `operator TimeNs()`
    }

    // Qualified prefix: walk `A::B::` (and `A<T>::`) chains leftward.
    std::string prefix;
    std::size_t k = name_idx;
    if (k >= 1 && is(k - 1, "~")) --k;
    while (k >= 2 && is(k - 1, "::")) {
      std::size_t q = k - 2;
      if (is(q, ">")) {  // templated qualifier: `Foo<T>::bar`
        int d = 0;
        while (q > p) {
          if (is(q, ">")) ++d;
          if (is(q, "<") && --d == 0) break;
          --q;
        }
        if (q <= p || !is_ident(q - 1)) break;
        --q;
      } else if (!is_ident(q)) {
        break;
      }
      prefix = tok(q).text + (prefix.empty() ? "" : "::" + prefix);
      k = q;
    }
    fn.scope = current_scope();
    if (!prefix.empty()) fn.scope += (fn.scope.empty() ? "" : "::") + prefix;

    fn.is_definition = delim == '{';
    if (delim == ';') {
      // `= default;` / `= delete;` after the parameter list.
      const std::size_t close = skip_parens(paren);
      for (std::size_t j = close; j + 1 < e; ++j)
        if (is(j, "=") && is_ident(j + 1) &&
            (tok(j + 1).text == "default" || tok(j + 1).text == "delete")) {
          fn.is_defaulted = true;
          fn.is_definition = true;
          break;
        }
    }
    fn.allowed = line_allows(lf_, Rule::kDeadPublicApi, fn.line);
    (void)b;
    out_.functions.push_back(std::move(fn));
    return skip_statement(e, delim);
  }

  [[nodiscard]] std::size_t record_variable(std::size_t b, std::size_t p, std::size_t e,
                                            char delim) {
    const bool ns_scope = stack_.empty() || stack_.back().kind != Frame::kType;
    if (!ns_scope) return skip_statement(e, delim);  // class members: not globals

    // Declarator name: first level-0 ident followed by '=', '[', ',', the
    // end of the statement, or the brace initializer.
    int depth = 0;
    std::size_t name_idx = e;
    std::size_t eq = e;  // first top-level '='
    for (std::size_t j = p; j < e; ++j) {
      const Token& t = tok(j);
      if (t.kind == TokKind::kPunct) {
        const std::string& w = t.text;
        if (w == "(" || w == "[" || w == "<") ++depth;
        else if ((w == ")" || w == "]" || w == ">") && depth > 0) --depth;
        else if (w == ">>" && depth > 0) depth -= depth >= 2 ? 2 : depth;
        else if (w == "=" && depth == 0 && eq == e) eq = j;
        continue;
      }
      if (depth != 0 || !is_ident(j) || name_idx != e) continue;
      const bool at_end = j + 1 >= e;
      if (at_end || is(j + 1, "=") || is(j + 1, "[") || is(j + 1, ",") || is(j + 1, "{"))
        name_idx = j;
    }
    if (name_idx >= e || name_idx <= p) return skip_statement(e, delim);
    if (eq != e && name_idx > eq) return skip_statement(e, delim);  // ident inside initializer

    FileSymbols::Global g;
    g.name = tok(name_idx).text;
    g.line = tok(name_idx).line;
    for (std::size_t j = b; j < name_idx; ++j) {
      if (!is_ident(j)) continue;
      const std::string& w = tok(j).text;
      if (w == "const") g.is_const = true;
      if (w == "constexpr" || w == "constinit" || w == "consteval") g.is_constexpr = true;
    }
    bool is_extern = false;
    for (std::size_t j = b; j < name_idx; ++j)
      if (is_ident(j) && tok(j).text == "extern") is_extern = true;
    for (std::size_t j = p; j < name_idx; ++j) {
      if (is_ident(j) && is_specifier(tok(j).text)) continue;
      if (!g.type_head.empty()) g.type_head += ' ';
      g.type_head += tok(j).text;
    }
    if (g.type_head.empty()) return skip_statement(e, delim);  // `struct {...} x;` tails etc.

    g.has_initializer = eq != e || delim == '{';
    g.is_extern_decl = is_extern && !g.has_initializer;

    // Initializer classification: literals, signs, and braces only?
    g.init_literal_only = g.has_initializer;
    auto classify_init_token = [&](const Token& t) {
      if (t.kind == TokKind::kNumber || t.kind == TokKind::kString || t.kind == TokKind::kChar)
        return;
      if (t.kind == TokKind::kIdent) {
        if (!word_in(t.text, {"true", "false", "nullptr"})) g.init_literal_only = false;
        return;
      }
      if (!word_in(t.text, {"-", "+", "{", "}", ","})) g.init_literal_only = false;
    };
    if (eq != e)
      for (std::size_t j = eq + 1; j < e; ++j) classify_init_token(tok(j));
    if (delim == '{') {
      const std::size_t close = skip_braces(e);
      for (std::size_t j = e + 1; j + 1 < close; ++j) classify_init_token(tok(j));
    }

    g.allowed = line_allows(lf_, Rule::kDynamicInitGlobal, g.line);
    out_.globals.push_back(std::move(g));
    return skip_statement(e, delim);
  }
};

}  // namespace

FileSymbols extract_symbols(std::string path, const LexedFile& lf) {
  return Extractor(std::move(path), lf).run();
}

SymbolIndex SymbolIndex::build(std::vector<FileSymbols> files) {
  SymbolIndex idx;
  std::sort(files.begin(), files.end(),
            [](const FileSymbols& a, const FileSymbols& b) { return a.path < b.path; });
  for (const FileSymbols& f : files) {
    for (const auto& [name, count] : f.mentions) idx.mentions[name] += count;
    for (const FileSymbols::Func& fn : f.functions) ++idx.decl_mentions[fn.name];
    for (const FileSymbols::Type& t : f.types) idx.type_names.insert(t.name);
  }
  idx.files = std::move(files);
  return idx;
}

std::size_t SymbolIndex::uses_of(std::string_view name) const {
  const auto it = mentions.find(std::string(name));
  if (it == mentions.end()) return 0;
  const auto d = decl_mentions.find(std::string(name));
  const std::size_t declared = d == decl_mentions.end() ? 0 : d->second;
  return it->second > declared ? it->second - declared : 0;
}

}  // namespace hpc::lint
