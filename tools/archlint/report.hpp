#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

/// \file report.hpp
/// archlint's CI-grade reporting: output formats, baselines, and the SARIF
/// self-check.
///
///  - **Formats** — `text` (the classic `path:line: [rule] message` lines),
///    `json` (a small deterministic machine-readable document), and `sarif`
///    (SARIF 2.1.0, the shape code-review UIs and upload actions ingest).
///    All three are byte-deterministic for a given finding list.
///  - **Baseline** — a committed file of known findings
///    (`rule<TAB>path<TAB>line`, '#' comments allowed) lets a new rule land
///    against an existing tree without a flag-day sweep: baselined findings
///    are suppressed, and stale entries (matching nothing) are counted so CI
///    can insist the baseline only ever shrinks.  `io-error` findings are
///    never suppressed — a vanished file must fail even a fully-baselined
///    run.
///  - **SARIF self-check** — `check_sarif_roundtrip()` re-parses emitted
///    SARIF with the strict obs jsonlite parser and verifies every finding
///    round-trips (rule id, path, line, message, and a driver rule entry),
///    in the spirit of tools/tracecat's artifact self-validation.

namespace hpc::lint {

enum class Format : int { kText, kJson, kSarif };

/// "text" / "json" / "sarif" -> Format.  Returns false on unknown names.
[[nodiscard]] bool format_from_name(std::string_view name, Format& out) noexcept;

/// Renders the full report document for \p findings (trailing newline
/// included; text format renders zero findings as an empty string).
[[nodiscard]] std::string render(const std::vector<Finding>& findings, Format format);

/// One-line human description of a rule (also embedded in SARIF driver
/// metadata).
[[nodiscard]] std::string_view rule_description(Rule r) noexcept;

/// A committed suppression list: findings present here are reported as
/// suppressed instead of failing the run.
struct Baseline {
  struct Entry {
    Rule rule = Rule::kAmbientRng;
    std::string path;
    std::size_t line = 1;
  };
  std::vector<Entry> entries;

  /// Loads a baseline file.  A missing file is an error (an empty committed
  /// file is the way to say "no suppressions").
  [[nodiscard]] static bool load(const std::filesystem::path& file, Baseline& out,
                                 std::string& error);

  /// Canonical serialization: sorted `rule<TAB>path<TAB>line` lines.
  [[nodiscard]] std::string serialize() const;

  /// Baseline covering exactly \p findings (io-error findings excluded:
  /// they must never be suppressible).
  [[nodiscard]] static Baseline from_findings(const std::vector<Finding>& findings);
};

/// Result of subtracting a baseline from a finding list.
struct BaselineResult {
  std::vector<Finding> kept;    ///< still-failing findings
  std::size_t suppressed = 0;   ///< findings swallowed by the baseline
  std::size_t stale = 0;        ///< baseline entries that matched nothing
};

/// Applies \p baseline to \p findings.  Each entry suppresses at most one
/// matching finding; `io-error` findings are always kept.
[[nodiscard]] BaselineResult apply_baseline(std::vector<Finding> findings,
                                            const Baseline& baseline);

/// CLI exit code for a finding list (after baseline subtraction): 0 clean,
/// 1 rule findings, 3 when any `io-error` finding is present — an unreadable
/// input means the *scan* is broken, which CI must distinguish from "the
/// tree is dirty".  (2 is reserved for usage errors.)
[[nodiscard]] int exit_code_for(const std::vector<Finding>& findings) noexcept;

/// Verifies that \p sarif (as produced by render(kSarif)) parses as strict
/// JSON and round-trips \p findings exactly.  On failure returns false and
/// fills \p error.
[[nodiscard]] bool check_sarif_roundtrip(const std::vector<Finding>& findings,
                                         std::string_view sarif, std::string& error);

}  // namespace hpc::lint
