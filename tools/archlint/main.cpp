#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

/// \file main.cpp
/// archlint CLI.  Usage:
///
///     archlint [--root DIR] [PATH...]
///
/// PATHs (files or directories, default: src tests bench examples
/// tools/benchjson tools/tracecat) are resolved against --root (default:
/// current directory) and scanned for
/// determinism-contract violations.  Exit status: 0 clean, 1 findings,
/// 2 usage error.

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  fs::path root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "archlint: --root requires a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: archlint [--root DIR] [PATH...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "archlint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty())
    paths = {"src", "tests", "bench", "examples", "tools/benchjson", "tools/tracecat"};

  // A missing scan path would silently scan nothing and exit 0 — in a CI
  // gate that reads as "clean", so treat it as a usage error instead.
  if (!fs::exists(root)) {
    std::fprintf(stderr, "archlint: root '%s' does not exist\n", root.string().c_str());
    return 2;
  }
  std::vector<fs::path> roots;
  roots.reserve(paths.size());
  for (const std::string& p : paths) {
    fs::path full = root / p;
    if (!fs::exists(full)) {
      std::fprintf(stderr, "archlint: path '%s' does not exist\n", full.string().c_str());
      return 2;
    }
    roots.push_back(std::move(full));
  }

  const std::vector<hpc::lint::Finding> findings = hpc::lint::lint_tree(roots);
  for (const hpc::lint::Finding& f : findings)
    std::fprintf(stderr, "%s\n", hpc::lint::format(f).c_str());
  if (!findings.empty()) {
    std::fprintf(stderr, "archlint: %zu violation(s)\n", findings.size());
    return 1;
  }
  return 0;
}
