#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"
#include "report.hpp"

/// \file main.cpp
/// archlint CLI (v3 engine).  Usage:
///
///     archlint [--root DIR] [--tree] [PATH...]
///              [--format text|json|sarif] [--output FILE]
///              [--baseline FILE] [--write-baseline FILE]
///              [--layers FILE | --no-layers]
///              [--semantics FILE | --no-semantics-config]
///              [--enable RULE[,RULE...]] [--disable RULE[,RULE...]]
///              [--jobs N] [--check-sarif]
///
/// PATHs (files or directories, default: src tests bench examples tools)
/// are resolved against --root (default: current directory) and scanned
/// with the token-stream engine, the include-graph passes (D6/D7, driven by
/// the layering spec — default tools/archlint/layers.txt under the root when
/// present), and the cross-TU semantic pass (D10-D14: every file is indexed
/// first, then the merged index is judged at once).
///
///  --format/--output   report format and destination (default: text to
///                      stderr; json/sarif default to stdout)
///  --baseline          suppress the findings listed in FILE; stale entries
///                      are reported so CI can insist the file shrinks
///  --write-baseline    write the current findings as a baseline and exit 0
///  --semantics         D11/D12 allowlist config (default:
///                      tools/archlint/semantics.txt under the root when
///                      present; --no-semantics-config forces the built-ins)
///  --enable/--disable  rule selection by textual id or "D10" shorthand
///                      (enable starts from an empty set; io-error is
///                      always on)
///  --jobs N            phase-1 worker threads (read/lex/per-file rules/
///                      indexing); output is byte-identical at any N
///  --check-sarif       render SARIF, re-parse it, and verify every finding
///                      round-trips; exit 0 on success even with findings
///
/// Exit status: 0 clean (or baseline-suppressed), 1 rule findings, 2 usage
/// error, 3 when any io-error finding is present (the scan itself is broken
/// — an unreadable file or config must not read as "tree is dirty", and can
/// never be baselined into "clean").

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: archlint [--root DIR] [--tree] [PATH...]\n"
               "                [--format text|json|sarif] [--output FILE]\n"
               "                [--baseline FILE] [--write-baseline FILE]\n"
               "                [--layers FILE | --no-layers]\n"
               "                [--semantics FILE | --no-semantics-config]\n"
               "                [--enable RULES] [--disable RULES]\n"
               "                [--jobs N] [--check-sarif]\n");
}

bool split_rules(const std::string& list, std::vector<hpc::lint::Rule>& out) {
  std::string cur;
  auto flush = [&] {
    if (cur.empty()) return true;
    hpc::lint::Rule r;
    if (!hpc::lint::rule_from_id(cur, r)) {
      std::fprintf(stderr, "archlint: unknown rule '%s'\n", cur.c_str());
      return false;
    }
    out.push_back(r);
    cur.clear();
    return true;
  };
  for (const char c : list) {
    if (c == ',') {
      if (!flush()) return false;
    } else {
      cur += c;
    }
  }
  return flush();
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using namespace hpc::lint;

  fs::path root = ".";
  std::vector<std::string> paths;
  Format format = Format::kText;
  std::string output;
  std::string baseline_file;
  std::string write_baseline_file;
  std::string layers_file;
  std::string semantics_file;
  bool no_layers = false;
  bool no_semantics_config = false;
  int jobs = 1;
  bool check_sarif = false;
  std::vector<Rule> enabled_rules;
  std::vector<Rule> disabled_rules;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "archlint: %s requires a value\n", flag);
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](std::string_view flag) -> std::string {
      // --flag=value or --flag value
      if (arg.size() > flag.size() && arg[flag.size()] == '=')
        return arg.substr(flag.size() + 1);
      const char* v = need_value(i, std::string(flag).c_str());
      return v == nullptr ? std::string() : std::string(v);
    };
    if (arg == "--root") {
      const char* v = need_value(i, "--root");
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--tree") {
      // Explicit alias for the default recursive scan mode.
    } else if (arg == "--check-sarif") {
      check_sarif = true;
    } else if (arg == "--no-layers") {
      no_layers = true;
    } else if (arg == "--no-semantics-config") {
      no_semantics_config = true;
    } else if (arg.rfind("--semantics", 0) == 0) {
      semantics_file = value_of("--semantics");
      if (semantics_file.empty()) return 2;
    } else if (arg.rfind("--jobs", 0) == 0) {
      const std::string v = value_of("--jobs");
      jobs = 0;
      for (const char c : v) {
        if (c < '0' || c > '9') {
          jobs = 0;
          break;
        }
        jobs = jobs * 10 + (c - '0');
      }
      if (jobs < 1 || jobs > 256) {
        std::fprintf(stderr, "archlint: --jobs must be an integer in [1, 256]\n");
        return 2;
      }
    } else if (arg.rfind("--format", 0) == 0) {
      const std::string v = value_of("--format");
      if (v.empty() || !format_from_name(v, format)) {
        std::fprintf(stderr, "archlint: --format must be text, json, or sarif\n");
        return 2;
      }
    } else if (arg.rfind("--output", 0) == 0) {
      output = value_of("--output");
      if (output.empty()) return 2;
    } else if (arg.rfind("--baseline", 0) == 0 && arg.rfind("--baseline-", 0) != 0) {
      baseline_file = value_of("--baseline");
      if (baseline_file.empty()) return 2;
    } else if (arg.rfind("--write-baseline", 0) == 0) {
      write_baseline_file = value_of("--write-baseline");
      if (write_baseline_file.empty()) return 2;
    } else if (arg.rfind("--layers", 0) == 0) {
      layers_file = value_of("--layers");
      if (layers_file.empty()) return 2;
    } else if (arg.rfind("--enable", 0) == 0) {
      if (!split_rules(value_of("--enable"), enabled_rules)) return 2;
    } else if (arg.rfind("--disable", 0) == 0) {
      if (!split_rules(value_of("--disable"), disabled_rules)) return 2;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "archlint: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "examples", "tools"};

  // A missing scan path would silently scan nothing and exit 0 — in a CI
  // gate that reads as "clean", so treat it as a usage error instead.
  if (!fs::exists(root)) {
    std::fprintf(stderr, "archlint: root '%s' does not exist\n", root.string().c_str());
    return 2;
  }
  std::vector<fs::path> roots;
  roots.reserve(paths.size());
  for (const std::string& p : paths) {
    fs::path full = root / p;
    if (!fs::exists(full)) {
      std::fprintf(stderr, "archlint: path '%s' does not exist\n", full.string().c_str());
      return 2;
    }
    roots.push_back(std::move(full));
  }

  TreeOptions opts;
  opts.root = root;
  if (!enabled_rules.empty()) {
    opts.rules = RuleSet::none();
    for (const Rule r : enabled_rules) opts.rules.enable(r);
  }
  for (const Rule r : disabled_rules) opts.rules.disable(r);
  if (!no_layers) {
    if (!layers_file.empty()) {
      opts.layers_file = root / layers_file;
      if (!fs::exists(opts.layers_file)) {
        std::fprintf(stderr, "archlint: layers spec '%s' does not exist\n",
                     opts.layers_file.string().c_str());
        return 2;
      }
    } else if (fs::exists(root / "tools/archlint/layers.txt")) {
      opts.layers_file = root / "tools/archlint/layers.txt";
    }
  }
  if (!no_semantics_config) {
    if (!semantics_file.empty()) {
      opts.semantics_file = root / semantics_file;
      if (!fs::exists(opts.semantics_file)) {
        std::fprintf(stderr, "archlint: semantics config '%s' does not exist\n",
                     opts.semantics_file.string().c_str());
        return 2;
      }
    } else if (fs::exists(root / "tools/archlint/semantics.txt")) {
      opts.semantics_file = root / "tools/archlint/semantics.txt";
    }
  }
  opts.jobs = jobs;

  std::vector<Finding> findings = lint_tree(roots, opts);

  if (!write_baseline_file.empty()) {
    const Baseline b = Baseline::from_findings(findings);
    std::ofstream out(fs::path(root) / write_baseline_file, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "archlint: cannot write baseline '%s'\n",
                   write_baseline_file.c_str());
      return 2;
    }
    out << b.serialize();
    std::fprintf(stderr, "archlint: wrote %zu baseline entr%s to %s\n", b.entries.size(),
                 b.entries.size() == 1 ? "y" : "ies", write_baseline_file.c_str());
    return 0;
  }

  std::size_t suppressed = 0;
  std::size_t stale = 0;
  if (!baseline_file.empty()) {
    Baseline b;
    std::string error;
    if (!Baseline::load(fs::path(root) / baseline_file, b, error)) {
      std::fprintf(stderr, "archlint: %s\n", error.c_str());
      return 2;
    }
    BaselineResult r = apply_baseline(std::move(findings), b);
    findings = std::move(r.kept);
    suppressed = r.suppressed;
    stale = r.stale;
  }

  const std::string report = render(findings, format);
  if (!output.empty()) {
    std::ofstream out(output, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "archlint: cannot write output '%s'\n", output.c_str());
      return 2;
    }
    out << report;
  } else if (format == Format::kText) {
    std::fputs(report.c_str(), stderr);
  } else {
    std::fputs(report.c_str(), stdout);
  }

  if (check_sarif) {
    const std::string sarif = render(findings, Format::kSarif);
    std::string error;
    if (!check_sarif_roundtrip(findings, sarif, error)) {
      std::fprintf(stderr, "archlint: SARIF self-check FAILED: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "archlint: SARIF self-check ok (%zu result%s round-tripped)\n",
                 findings.size(), findings.size() == 1 ? "" : "s");
    return 0;
  }

  std::fprintf(stderr, "archlint: %zu violation(s), %zu baseline-suppressed, %zu stale baseline entr%s\n",
               findings.size(), suppressed, stale, stale == 1 ? "y" : "ies");
  return exit_code_for(findings);
}
