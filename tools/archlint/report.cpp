#include "report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/jsonlite.hpp"

/// \file report.cpp
/// Format rendering, baseline IO, and the SARIF round-trip self-check.

namespace hpc::lint {

namespace obsj = hpc::obs::jsonlite;

bool format_from_name(std::string_view name, Format& out) noexcept {
  if (name == "text") out = Format::kText;
  else if (name == "json") out = Format::kJson;
  else if (name == "sarif") out = Format::kSarif;
  else return false;
  return true;
}

std::string_view rule_description(Rule r) noexcept {
  switch (r) {
    case Rule::kAmbientRng:
      return "ambient randomness or wall-clock read outside the seeded sim::Rng";
    case Rule::kUnorderedIter:
      return "iteration-order-unstable container (std::unordered_map/set)";
    case Rule::kRawTime:
      return "raw-typed _ns parameter in a public API (use sim::TimeNs)";
    case Rule::kNodiscard:
      return "const accessor or factory missing [[nodiscard]]";
    case Rule::kHeaderHygiene:
      return "header missing #pragma once, hpc:: namespace, or \\file doc block";
    case Rule::kLayerViolation:
      return "include crossing the declared module layering (layers.txt)";
    case Rule::kIncludeCycle:
      return "cycle in the file-level include graph";
    case Rule::kFloatEq:
      return "raw ==/!= between floating-point operands";
    case Rule::kMutableGlobal:
      return "mutable namespace-scope variable (hidden replayability hazard)";
    case Rule::kNondetContainer:
      return "container iterating in address/hash order (unordered_* or pointer-keyed map/set)";
    case Rule::kEntropySource:
      return "entropy source under src/ (random_device, *_clock::now, time(, rand(, getenv)";
    case Rule::kRngDiscipline:
      return "ad-hoc Rng root or seed arithmetic outside src/sim (use Rng::child)";
    case Rule::kDynamicInitGlobal:
      return "namespace-scope object with a dynamic initializer (static-init-order hazard)";
    case Rule::kDeadPublicApi:
      return "src/ header function with zero call/use sites in the scanned tree";
    case Rule::kIoError:
      return "input file could not be read (never maskable)";
  }
  return "unknown";
}

namespace {

std::string render_text(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += format(f) + "\n";
  return out;
}

std::string render_json(const std::vector<Finding>& findings) {
  std::string out = "{\n  \"tool\": \"archlint\",\n  \"version\": 3,\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": \"" + std::string(id_of(f.rule)) + "\", \"path\": \"" +
           obsj::escape(f.path) + "\", \"line\": " + std::to_string(f.line) +
           ", \"message\": \"" + obsj::escape(f.message) + "\"}";
  }
  out += findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"count\": " + std::to_string(findings.size()) + "\n}\n";
  return out;
}

std::string render_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"archlint\",\n";
  out += "          \"version\": \"3.0.0\",\n";
  out += "          \"informationUri\": \"https://example.invalid/archipelago/archlint\",\n";
  out += "          \"rules\": [";
  for (int i = 0; i < kRuleCount; ++i) {
    const Rule r = static_cast<Rule>(i);
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + std::string(id_of(r)) +
           "\", \"shortDescription\": {\"text\": \"" +
           obsj::escape(rule_description(r)) + "\"}}";
  }
  out += "\n          ]\n        }\n      },\n";
  out += "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\"ruleId\": \"" + std::string(id_of(f.rule)) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" + obsj::escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
           obsj::escape(f.path) + "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}]}";
  }
  out += findings.empty() ? "]\n" : "\n      ]\n";
  out += "    }\n  ]\n}\n";
  return out;
}

}  // namespace

std::string render(const std::vector<Finding>& findings, Format format) {
  switch (format) {
    case Format::kText: return render_text(findings);
    case Format::kJson: return render_json(findings);
    case Format::kSarif: return render_sarif(findings);
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

bool Baseline::load(const std::filesystem::path& file, Baseline& out, std::string& error) {
  out.entries.clear();
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    error = "cannot read baseline '" + file.generic_string() + "'";
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 = t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      error = file.generic_string() + ":" + std::to_string(line_no) +
              ": expected 'rule<TAB>path<TAB>line'";
      return false;
    }
    Entry e;
    if (!rule_from_id(line.substr(0, t1), e.rule)) {
      error = file.generic_string() + ":" + std::to_string(line_no) + ": unknown rule '" +
              line.substr(0, t1) + "'";
      return false;
    }
    if (e.rule == Rule::kIoError) {
      error = file.generic_string() + ":" + std::to_string(line_no) +
              ": io-error findings cannot be baselined";
      return false;
    }
    e.path = line.substr(t1 + 1, t2 - t1 - 1);
    const std::string num = line.substr(t2 + 1);
    e.line = 0;
    for (const char c : num) {
      if (c < '0' || c > '9') {
        error = file.generic_string() + ":" + std::to_string(line_no) + ": bad line number '" +
                num + "'";
        return false;
      }
      e.line = e.line * 10 + static_cast<std::size_t>(c - '0');
    }
    out.entries.push_back(std::move(e));
  }
  return true;
}

std::string Baseline::serialize() const {
  std::vector<std::string> lines;
  lines.reserve(entries.size());
  for (const Entry& e : entries)
    lines.push_back(std::string(id_of(e.rule)) + "\t" + e.path + "\t" + std::to_string(e.line));
  std::sort(lines.begin(), lines.end());
  std::string out =
      "# archlint baseline: known findings suppressed during the transition to\n"
      "# new rules.  Regenerate with `archlint --write-baseline <file>`; CI\n"
      "# forbids stale entries and new debt for rules that existed at HEAD,\n"
      "# so this file only ever ratchets down.  Format: rule\\tpath\\tline\n";
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

int exit_code_for(const std::vector<Finding>& findings) noexcept {
  bool any = false;
  for (const Finding& f : findings) {
    if (f.rule == Rule::kIoError) return 3;
    any = true;
  }
  return any ? 1 : 0;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  for (const Finding& f : findings) {
    if (f.rule == Rule::kIoError) continue;
    b.entries.push_back(Entry{f.rule, f.path, f.line});
  }
  return b;
}

BaselineResult apply_baseline(std::vector<Finding> findings, const Baseline& baseline) {
  // Each entry suppresses at most one matching finding (multiset match).
  std::vector<std::pair<Baseline::Entry, bool>> pool;  // entry, used
  pool.reserve(baseline.entries.size());
  for (const Baseline::Entry& e : baseline.entries) pool.emplace_back(e, false);
  BaselineResult out;
  for (Finding& f : findings) {
    bool matched = false;
    if (f.rule != Rule::kIoError) {
      for (auto& [e, used] : pool) {
        if (used || e.rule != f.rule || e.line != f.line || e.path != f.path) continue;
        used = true;
        matched = true;
        break;
      }
    }
    if (matched) ++out.suppressed;
    else out.kept.push_back(std::move(f));
  }
  for (const auto& [e, used] : pool)
    if (!used) ++out.stale;
  return out;
}

// ---------------------------------------------------------------------------
// SARIF round-trip self-check
// ---------------------------------------------------------------------------

bool check_sarif_roundtrip(const std::vector<Finding>& findings, std::string_view sarif,
                           std::string& error) {
  obsj::Value doc;
  if (!obsj::parse(sarif, doc, error)) {
    error = "sarif is not strict JSON: " + error;
    return false;
  }
  const obsj::Value* version = doc.find("version");
  if (version == nullptr || !version->is_string() || version->string != "2.1.0") {
    error = "sarif 'version' must be \"2.1.0\"";
    return false;
  }
  const obsj::Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->is_array() || runs->array.size() != 1) {
    error = "sarif 'runs' must be a one-element array";
    return false;
  }
  const obsj::Value& run = runs->array[0];
  const obsj::Value* tool = run.find("tool");
  const obsj::Value* driver = tool != nullptr ? tool->find("driver") : nullptr;
  const obsj::Value* name = driver != nullptr ? driver->find("name") : nullptr;
  if (name == nullptr || !name->is_string() || name->string != "archlint") {
    error = "sarif tool.driver.name must be \"archlint\"";
    return false;
  }
  const obsj::Value* rules = driver->find("rules");
  if (rules == nullptr || !rules->is_array() || rules->array.size() != kRuleCount) {
    error = "sarif driver.rules must list all " + std::to_string(kRuleCount) + " rules";
    return false;
  }
  auto rule_listed = [&](std::string_view id) {
    for (const obsj::Value& r : rules->array) {
      const obsj::Value* rid = r.find("id");
      if (rid != nullptr && rid->is_string() && rid->string == id) return true;
    }
    return false;
  };
  const obsj::Value* results = run.find("results");
  if (results == nullptr || !results->is_array()) {
    error = "sarif run.results must be an array";
    return false;
  }
  if (results->array.size() != findings.size()) {
    error = "sarif result count " + std::to_string(results->array.size()) +
            " != finding count " + std::to_string(findings.size());
    return false;
  }
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const obsj::Value& r = results->array[i];
    const std::string at = "sarif results[" + std::to_string(i) + "]";
    const obsj::Value* rule_id = r.find("ruleId");
    if (rule_id == nullptr || !rule_id->is_string() || rule_id->string != id_of(f.rule)) {
      error = at + ": ruleId mismatch";
      return false;
    }
    if (!rule_listed(rule_id->string)) {
      error = at + ": ruleId '" + rule_id->string + "' missing from driver.rules";
      return false;
    }
    const obsj::Value* message = r.find("message");
    const obsj::Value* text = message != nullptr ? message->find("text") : nullptr;
    if (text == nullptr || !text->is_string() || text->string != f.message) {
      error = at + ": message.text mismatch";
      return false;
    }
    const obsj::Value* locations = r.find("locations");
    if (locations == nullptr || !locations->is_array() || locations->array.size() != 1) {
      error = at + ": locations must be a one-element array";
      return false;
    }
    const obsj::Value* phys = locations->array[0].find("physicalLocation");
    const obsj::Value* artifact = phys != nullptr ? phys->find("artifactLocation") : nullptr;
    const obsj::Value* uri = artifact != nullptr ? artifact->find("uri") : nullptr;
    if (uri == nullptr || !uri->is_string() || uri->string != f.path) {
      error = at + ": artifactLocation.uri mismatch";
      return false;
    }
    const obsj::Value* region = phys != nullptr ? phys->find("region") : nullptr;
    const obsj::Value* start = region != nullptr ? region->find("startLine") : nullptr;
    if (start == nullptr || !start->is_number() ||
        static_cast<std::size_t>(start->number) != f.line) {
      error = at + ": region.startLine mismatch";
      return false;
    }
  }
  return true;
}

}  // namespace hpc::lint
