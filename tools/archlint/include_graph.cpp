#include "include_graph.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

/// \file include_graph.cpp
/// Layering-spec parsing, module mapping, and the D6/D7 graph passes.

namespace hpc::lint {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split_words(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

/// Directory part of a generic path ("src/net/x.hpp" -> "src/net").
std::string dir_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string() : std::string(path.substr(0, slash));
}

/// Lexically normalizes "a/b/../c" style paths (enough for include joins).
std::string normalize(std::string_view path) {
  std::vector<std::string> parts;
  std::string cur;
  auto push = [&] {
    if (cur.empty() || cur == ".") {
      cur.clear();
      return;
    }
    if (cur == ".." && !parts.empty() && parts.back() != "..") parts.pop_back();
    else parts.push_back(cur);
    cur.clear();
  };
  for (const char c : path) {
    if (c == '/') push();
    else cur += c;
  }
  push();
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

}  // namespace

const std::vector<std::string>* LayerSpec::find(std::string_view module) const {
  for (const auto& [name, deps] : allow)
    if (name == module) return &deps;
  return nullptr;
}

bool parse_layers(std::string_view text, LayerSpec& out, std::string& error) {
  out.allow.clear();
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    std::string line = trim(raw);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      error = "layers.txt:" + std::to_string(line_no) + ": expected '<module>: <deps...>'";
      return false;
    }
    const std::string module = trim(line.substr(0, colon));
    if (module.empty()) {
      error = "layers.txt:" + std::to_string(line_no) + ": empty module name";
      return false;
    }
    if (out.find(module) != nullptr) {
      error = "layers.txt:" + std::to_string(line_no) + ": duplicate module '" + module + "'";
      return false;
    }
    out.allow.emplace_back(module, split_words(line.substr(colon + 1)));
  }
  // A typo in a dep name must not silently allow everything: every dep has
  // to name a declared module.
  for (const auto& [name, deps] : out.allow) {
    for (const std::string& d : deps) {
      if (out.find(d) == nullptr) {
        error = "layers.txt: module '" + name + "' allows unknown module '" + d + "'";
        return false;
      }
      if (d == name) {
        error = "layers.txt: module '" + name + "' lists itself (own-module includes are implicit)";
        return false;
      }
    }
  }
  return true;
}

bool load_layers(const std::filesystem::path& file, LayerSpec& out, std::string& error) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    error = "cannot read '" + file.generic_string() + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_layers(buf.str(), out, error);
}

std::string module_of(std::string_view rel_path) {
  const std::string norm = normalize(rel_path);
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : norm) {
    if (c == '/') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  if (parts.size() >= 2 && (parts[0] == "src" || parts[0] == "tools"))
    return parts[0] == "src" ? parts[1] : parts[0] + "/" + parts[1];
  return parts.empty() ? std::string() : parts[0];
}

FileIncludes extract_includes(std::string rel_path, const LexedFile& lf) {
  FileIncludes out;
  out.rel_path = std::move(rel_path);
  for (const Token& t : lf.tokens) {
    if (t.kind != TokKind::kDirective) continue;
    static constexpr std::string_view kInclude = "#include \"";
    if (t.text.rfind(kInclude, 0) != 0) continue;
    const std::size_t close = t.text.find('"', kInclude.size());
    if (close == std::string::npos) continue;
    FileIncludes::Include inc;
    inc.target = t.text.substr(kInclude.size(), close - kInclude.size());
    inc.line = t.line;
    inc.allowed = line_allows(lf, Rule::kLayerViolation, t.line);
    out.includes.push_back(std::move(inc));
  }
  return out;
}

namespace {

/// Resolves a quoted include against the scanned set: the includer's own
/// directory first (the quoted-include search rule), then the src/ include
/// root, then the repo root.  Returns the resolved rel_path or "".
std::string resolve_include(const std::string& from, const std::string& target,
                            const std::map<std::string, std::size_t>& by_path) {
  const std::string candidates[] = {
      normalize(dir_of(from) + "/" + target),
      normalize("src/" + target),
      normalize(target),
  };
  for (const std::string& c : candidates)
    if (by_path.count(c) != 0) return c;
  return std::string();
}

}  // namespace

std::vector<Finding> check_layering(const std::vector<FileIncludes>& files,
                                    const LayerSpec& spec) {
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) by_path.emplace(files[i].rel_path, i);
  std::vector<Finding> out;
  for (const FileIncludes& f : files) {
    const std::string mod = module_of(f.rel_path);
    const std::vector<std::string>* allowed = spec.find(mod);
    if (allowed == nullptr) continue;  // unconstrained module (tests/bench/...)
    for (const FileIncludes::Include& inc : f.includes) {
      if (inc.allowed) continue;
      // Module of the include target: resolve against the scanned set if
      // possible, else fall back to the path's first component when that
      // names a declared module (unknown targets never constrain).
      std::string target_mod;
      const std::string resolved = resolve_include(f.rel_path, inc.target, by_path);
      if (!resolved.empty()) {
        target_mod = module_of(resolved);
      } else {
        const std::string first = inc.target.substr(0, inc.target.find('/'));
        if (spec.known(first)) target_mod = first;
      }
      if (target_mod.empty() || target_mod == mod) continue;
      if (std::find(allowed->begin(), allowed->end(), target_mod) != allowed->end()) continue;
      std::string deps = "(nothing)";
      if (!allowed->empty()) {
        deps.clear();
        for (const std::string& d : *allowed) deps += deps.empty() ? d : " " + d;
      }
      out.push_back(Finding{
          Rule::kLayerViolation, f.rel_path, inc.line,
          "layer violation: module '" + mod + "' may not include '" + inc.target +
              "' (module '" + target_mod + "'); allowed deps: " + deps +
              " — see tools/archlint/layers.txt"});
    }
  }
  return out;
}

std::vector<Finding> check_cycles(const std::vector<FileIncludes>& files) {
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) by_path.emplace(files[i].rel_path, i);
  const std::size_t n = files.size();
  std::vector<std::vector<std::size_t>> adj(n);
  std::vector<std::vector<std::size_t>> edge_line(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const FileIncludes::Include& inc : files[i].includes) {
      const std::string resolved = resolve_include(files[i].rel_path, inc.target, by_path);
      if (resolved.empty()) continue;
      adj[i].push_back(by_path.at(resolved));
      edge_line[i].push_back(inc.line);
    }
  }
  // Iterative DFS with colors; every back edge closes a cycle.  Each cycle
  // is reported once, keyed on its sorted member set, anchored at its
  // lexicographically-smallest file.
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<std::size_t> parent(n, n);
  std::vector<Finding> out;
  std::vector<std::string> seen_cycles;
  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // node, next-edge
    color[start] = 1;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next >= adj[node].size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::size_t to = adj[node][next];
      ++next;
      if (color[to] == 0) {
        color[to] = 1;
        parent[to] = node;
        stack.emplace_back(to, 0);
      } else if (color[to] == 1) {
        // Back edge node -> to: walk the stack to spell the cycle.
        std::vector<std::size_t> cycle;
        for (std::size_t s = stack.size(); s-- > 0;) {
          cycle.push_back(stack[s].first);
          if (stack[s].first == to) break;
        }
        std::reverse(cycle.begin(), cycle.end());  // to ... node
        std::vector<std::string> names;
        names.reserve(cycle.size());
        for (const std::size_t c : cycle) names.push_back(files[c].rel_path);
        std::vector<std::string> key_vec = names;
        std::sort(key_vec.begin(), key_vec.end());
        std::string key;
        for (const std::string& k : key_vec) key += k + "|";
        if (std::find(seen_cycles.begin(), seen_cycles.end(), key) != seen_cycles.end())
          continue;
        seen_cycles.push_back(key);
        // Anchor at the smallest member so reports are deterministic, and
        // point at that member's #include of the next file in the cycle.
        std::size_t anchor_pos = 0;
        for (std::size_t k = 1; k < names.size(); ++k)
          if (names[k] < names[anchor_pos]) anchor_pos = k;
        std::string chain;
        for (std::size_t k = 0; k < names.size(); ++k)
          chain += names[(anchor_pos + k) % names.size()] + " -> ";
        chain += names[anchor_pos];
        const std::size_t anchor = cycle[anchor_pos];
        const std::size_t succ = cycle[(anchor_pos + 1) % cycle.size()];
        std::size_t line = 1;
        for (std::size_t k = 0; k < adj[anchor].size(); ++k)
          if (adj[anchor][k] == succ) {
            line = edge_line[anchor][k];
            break;
          }
        out.push_back(Finding{Rule::kIncludeCycle, names[anchor_pos], line,
                              "include cycle: " + chain});
      }
    }
  }
  return out;
}

}  // namespace hpc::lint
