#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file lexer.hpp
/// archlint's C++ token-stream lexer.
///
/// The v1 scanner worked on physical lines with string/comment contents
/// blanked, which made it blind to anything that spans lines: multi-line
/// declarations, line-spliced comments, `#if 0` regions.  This lexer replaces
/// that with a real (preprocessor-aware, type-unaware) token stream:
///
///  - **Line splices** (`backslash-newline`) are removed before tokenization,
///    exactly as translation phase 2 does, while every token keeps the
///    physical line it started on so findings still point at real source.
///  - **Comments** never enter the token stream.  Their text is collected
///    per physical line in `LexedFile::line_comments` so `allow(...)`
///    annotations and `\file` doc blocks stay checkable.
///  - **String and character literals** become single `kString`/`kChar`
///    tokens (raw strings included), so fixture snippets that spell
///    `rand()` inside a literal can never trip a rule.
///  - **Preprocessor directives** become single `kDirective` tokens carrying
///    the whitespace-collapsed directive text (`#include "net/link.hpp"`),
///    which is what the include-graph pass parses.
///  - **`#if 0` / `#if false` regions** are skipped entirely (nested
///    conditionals tracked), so dead code cannot produce findings.
///
/// The lexer has no symbol table and does not expand macros: it is the
/// smallest faithful tokenizer the determinism rules need, not a frontend.

namespace hpc::lint {

enum class TokKind : int {
  kIdent,      ///< identifier or keyword
  kNumber,     ///< pp-number (integer or floating literal)
  kString,     ///< string literal, including raw strings ("…" / R"(…)")
  kChar,       ///< character literal ('…')
  kPunct,      ///< operator / punctuator (multi-char ops are one token)
  kDirective,  ///< whole preprocessor directive, whitespace-collapsed
};

/// One token.  `line` is the 1-based physical line the token starts on in
/// the original (unspliced) source.
struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 1;
};

/// The lexed view of one translation unit.
struct LexedFile {
  std::vector<Token> tokens;               ///< code tokens, comments excluded
  std::vector<std::string> line_comments;  ///< comment text per line (0-based: line N -> [N-1])
  std::size_t line_count = 0;              ///< number of physical lines
};

/// Tokenizes \p text.  Never fails: malformed input degrades to best-effort
/// punctuator tokens rather than an error (a linter must not die on the code
/// it is criticising).
[[nodiscard]] LexedFile lex(std::string_view text);

/// True if a `kNumber` token spells a floating-point literal (has a '.', a
/// decimal exponent, an f/F suffix on a non-hex mantissa, or a hex binary
/// exponent).
[[nodiscard]] bool is_float_literal(std::string_view number);

}  // namespace hpc::lint
