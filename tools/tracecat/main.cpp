#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracefile.hpp"

/// \file main.cpp
/// tracecat: validate and summarize archipelago trace artifacts.  Usage:
///
///     tracecat [--check] [--top N] [--metrics FILE] TRACE
///
/// TRACE is a Chrome trace-event JSON file exported by
/// `obs::TraceRecorder::export_chrome_trace`.  tracecat re-parses it with the
/// strict jsonlite parser and enforces the exporter's invariants (known phase
/// codes, valid timestamps/durations, numeric counter values, per-track
/// begin/end balance with matching names).  Without `--check` it also prints
/// a summary: event counts per phase, the top spans by inclusive simulated
/// time, and counter extrema.  `--metrics FILE` additionally validates an
/// archipelago-metrics-v1 snapshot.  Exit status: 0 valid, 1 malformed or
/// unbalanced, 2 usage error.

int main(int argc, char** argv) {
  bool check_only = false;
  int top_n = 10;
  std::string metrics_path;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tracecat: --top requires a count\n");
        return 2;
      }
      top_n = std::atoi(argv[++i]);
      if (top_n < 0) {
        std::fprintf(stderr, "tracecat: --top must be >= 0\n");
        return 2;
      }
    } else if (arg == "--metrics") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tracecat: --metrics requires a file\n");
        return 2;
      }
      metrics_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: tracecat [--check] [--top N] [--metrics FILE] TRACE\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tracecat: unknown option '%s'\n", arg.c_str());
      return 2;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      std::fprintf(stderr, "tracecat: more than one trace file given\n");
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "usage: tracecat [--check] [--top N] [--metrics FILE] TRACE\n");
    return 2;
  }

  hpc::obs::TraceStats stats;
  const std::string error = hpc::obs::check_trace_file(trace_path, &stats);
  if (!error.empty()) {
    std::fprintf(stderr, "tracecat: %s: %s\n", trace_path.c_str(), error.c_str());
    return 1;
  }

  if (!metrics_path.empty()) {
    const std::string merr = hpc::obs::validate_snapshot_file(metrics_path);
    if (!merr.empty()) {
      std::fprintf(stderr, "tracecat: %s: %s\n", metrics_path.c_str(), merr.c_str());
      return 1;
    }
  }

  if (check_only) {
    std::printf("tracecat: %s: ok (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(stats.events));
    if (!metrics_path.empty())
      std::printf("tracecat: %s: ok\n", metrics_path.c_str());
    return 0;
  }

  std::printf("%s", hpc::obs::summary(stats, top_n).c_str());
  return 0;
}
