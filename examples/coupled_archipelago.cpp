/// Coupled co-simulation on one clock: a sharded analysis campaign staged
/// over a contended WAN, with the Open Compute Exchange clearing prices on
/// the same timeline and the cleared price flowing into every task's bill.
///
/// Three substrates share one sim::Engine:
///   - core::System's workflow driver turns task readiness/completion into
///     kernel events,
///   - net::FlowSim simulates every staging transfer as a real flow on a WAN
///     star (concurrent transfers share uplinks max-min fairly),
///   - market::Exchange clears a node-hour market every 500 ms of simulated
///     time; tasks committing after the first clearing pay the cleared price.
///
/// The run is deterministic: the engine's event digest is the scenario's
/// single determinism witness (printed below, pinned by CI), and the obs
/// flight recorder exports byte-identical artifacts for a given seed.
///
/// Run: ./build/examples/coupled_archipelago [TRACE_OUT] [METRICS_OUT]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "market/exchange.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/report.hpp"

namespace {

std::vector<hpc::fed::Site> make_sites() {
  using namespace hpc;
  fed::Site campus = fed::make_onprem_site(0, "campus", 12, 4);
  fed::Site center = fed::make_supercomputer_site(1, "national-center", 48);
  center.admin_domain = 0;
  fed::Site cloud = fed::make_cloud_site(2, "cloud", 48, 0.15);
  cloud.admin_domain = 0;
  return {campus, center, cloud};
}

/// Sharded campaign: six parallel analysis shards, each consuming its own
/// 60 GB shard plus a shared 40 GB reference, fanned into a training task.
/// The shards become ready together, so their staging flows contend for the
/// campus uplink — the contention the analytic planner cannot see.
hpc::core::Workflow make_campaign(hpc::core::System& system, int shards) {
  using namespace hpc;
  std::vector<int> shard_ds;
  for (int s = 0; s < shards; ++s)
    shard_ds.push_back(system.catalog().add("shard-" + std::to_string(s), 60.0,
                                            /*home_site=*/0, /*admin_domain=*/0,
                                            data::Sensitivity::kInternal,
                                            "survey frames, shard " + std::to_string(s)));
  const int reference = system.catalog().add(
      "reference-catalog", 40.0, /*home_site=*/0, /*admin_domain=*/0,
      data::Sensitivity::kPublic, "calibration reference");

  core::Workflow wf;
  std::vector<int> shard_tasks;
  for (int s = 0; s < shards; ++s) {
    core::Task analyze;
    analyze.name = "analyze-" + std::to_string(s);
    analyze.kind = core::TaskKind::kAnalyze;
    analyze.input_datasets = {shard_ds[static_cast<std::size_t>(s)], reference};
    analyze.output_gb = 8.0;
    analyze.job.nodes = 8;
    analyze.job.total_gflop = 3e5;
    shard_tasks.push_back(wf.add(analyze));
  }
  core::Task train;
  train.name = "train-surrogate";
  train.kind = core::TaskKind::kTrain;
  train.deps = shard_tasks;
  train.input_tasks = shard_tasks;
  train.output_gb = 2.0;
  train.job.nodes = 16;
  train.job.total_gflop = 8e5;
  const int t_train = wf.add(train);

  core::Task deploy;
  deploy.name = "deploy-inference";
  deploy.kind = core::TaskKind::kInfer;
  deploy.deps = {t_train};
  deploy.input_tasks = {t_train};
  deploy.job.nodes = 1;
  deploy.job.total_gflop = 5e2;
  wf.add(deploy);
  return wf;
}

void populate_market(hpc::market::Exchange& exchange) {
  using namespace hpc;
  sim::Rng rng(exchange.component_name().size());  // fixed, tiny seed
  for (int s = 0; s < 8; ++s)
    exchange.add_agent(std::make_unique<market::ProviderAgent>(
        "site-" + std::to_string(s), rng.uniform(0.6, 1.4), 3.0));
  for (int u = 0; u < 12; ++u)
    exchange.add_agent(std::make_unique<market::ConsumerAgent>(
        "user-" + std::to_string(u), rng.uniform(0.9, 2.4), 2.0));
  exchange.add_agent(std::make_unique<market::BrokerAgent>("broker"));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpc;
  const char* trace_out = argc > 1 ? argv[1] : "coupled_trace.json";
  const char* metrics_out = argc > 2 ? argv[2] : "coupled_metrics.json";
  constexpr int kShards = 6;

  std::printf("Coupled archipelago: jobs -> flows -> market clearing on one clock\n\n");

  // Reference point: the batch planner's analytic-staging answer.
  core::System batch_system(make_sites());
  const core::Workflow batch_wf = make_campaign(batch_system, kShards);
  const core::WorkflowResult batch =
      batch_system.run(batch_wf, core::PlacementPolicy::kGravityAware);

  // The coupled run: same sites, same campaign, real WAN + market.
  core::System system(make_sites());
  obs::TraceRecorder trace;
  obs::MetricRegistry metrics;
  trace.set_enabled(true);
  system.set_observer(&trace, &metrics);
  const core::Workflow wf = make_campaign(system, kShards);

  market::Exchange exchange(2026);
  populate_market(exchange);
  exchange.set_observer(&trace, &metrics);
  exchange.set_cosim_clearing(sim::from_seconds(0.5), 60);

  core::CosimConfig cfg;
  cfg.seed = 42;
  cfg.price_fn = [&exchange] { return exchange.last_price(); };
  cfg.extra = {&exchange};
  const core::CoupledResult coupled =
      system.run_coupled(wf, core::PlacementPolicy::kGravityAware, cfg);

  sim::Table tasks({"task", "site", "ready", "start", "finish", "staged", "cost-$"});
  for (const core::TaskOutcome& o : coupled.workflow.outcomes) {
    const core::Task& task = wf.task(o.task);
    tasks.add_row({task.name,
                   o.site >= 0 ? system.sites()[static_cast<std::size_t>(o.site)].name
                               : "(unplaced)",
                   sim::fmt_time_ns(static_cast<double>(o.ready)),
                   sim::fmt_time_ns(static_cast<double>(o.start)),
                   sim::fmt_time_ns(static_cast<double>(o.finish)),
                   sim::fmt_bytes(o.staged_gb * 1e9), sim::fmt(o.cost_usd, 2)});
  }
  tasks.print();

  const sim::Sampler fct = coupled.wan.fct_sampler();
  std::printf("\nWAN fabric: %zu staging flows, mean FCT %s, p99 %s, %.2f GB/s aggregate\n",
              coupled.wan.flows.size(), sim::fmt_time_ns(fct.mean()).c_str(),
              sim::fmt_time_ns(fct.p99()).c_str(),
              coupled.wan.aggregate_throughput_gbs);
  std::printf("market: %d clearing rounds, last price $%.3f, %.1f node-hours traded\n",
              static_cast<int>(exchange.round_prices().size()), exchange.last_price(),
              exchange.total_volume());

  sim::Table compare({"model", "makespan", "WAN moved", "cost-$"});
  compare.add_row({"batch (analytic staging)",
                   sim::fmt_time_ns(static_cast<double>(batch.makespan)),
                   sim::fmt_bytes(batch.wan_gb_moved * 1e9),
                   sim::fmt(batch.total_cost_usd, 2)});
  compare.add_row({"coupled (simulated WAN)",
                   sim::fmt_time_ns(static_cast<double>(coupled.workflow.makespan)),
                   sim::fmt_bytes(coupled.workflow.wan_gb_moved * 1e9),
                   sim::fmt(coupled.workflow.total_cost_usd, 2)});
  std::printf("\n");
  compare.print();

  if (!trace.export_chrome_trace(trace_out) || !metrics.write_snapshot(metrics_out)) {
    std::fprintf(stderr, "failed to write observability artifacts\n");
    return 1;
  }
  std::printf("\ntrace: %s (%zu events)   metrics: %s\n", trace_out, trace.size(),
              metrics_out);
  std::printf("engine: %llu events, end time %s\n",
              static_cast<unsigned long long>(coupled.events_executed),
              sim::fmt_time_ns(static_cast<double>(coupled.end_time)).c_str());
  std::printf("engine digest: %016llx\n",
              static_cast<unsigned long long>(coupled.engine_digest));
  return 0;
}
