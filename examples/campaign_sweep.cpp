/// Campaign sweep: the C7 data-gravity federation comparison, rerun as a
/// declarative scenario matrix instead of hand-rolled loops.
///
/// The matrix crosses WAN generation (10G vs 100G), device mix (baseline vs
/// cloud-heavy), placement policy (siloed / gravity / cheapest), and seeds.
/// Every cell expands into independent `core::System::run_coupled` replicas
/// executed under a pluggable `exec::ExecutionPolicy`; the aggregation —
/// per-replica digests, the merged archipelago-metrics-v1 snapshot, the
/// per-cell archipelago-bench-v1 aggregate, and the summary report — is
/// byte-identical whichever policy runs it (replica-index-order folding).
///
/// Run: ./build/examples/campaign_sweep [WORKERS] [ARTIFACT_DIR]
///   WORKERS      0 = serial policy; N > 0 = ThreadPoolPolicy{N} (default 0)
///   ARTIFACT_DIR when set, artifacts are written there

#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "exec/policy.hpp"

int main(int argc, char** argv) {
  using namespace hpc;
  const int workers = argc > 1 ? std::atoi(argv[1]) : 0;

  // 3 seeds per cell so the per-cell aggregate clears benchjson_check's
  // default min-iters 3 gate (iterations = replicas in cells.json).
  const campaign::ScenarioMatrix matrix = campaign::default_federation_matrix(/*seeds=*/3);
  campaign::CampaignOptions options;
  options.seed = 2026;
  if (argc > 2) options.artifact_dir = argv[2];

  std::printf("Campaign sweep: %zu replicas (%zu topologies x %zu mixes x %zu policies x %zu seeds)\n",
              matrix.size(), matrix.topologies.size(), matrix.device_mixes.size(),
              matrix.policies.size(), matrix.seeds.size());

  campaign::CampaignResult result;
  const campaign::ScenarioFn scenario = campaign::make_federation_scenario();
  if (workers > 0) {
    exec::ThreadPoolPolicy policy(workers);
    std::printf("execution policy: %s x%d\n\n", policy.name().data(), policy.workers());
    result = campaign::run_campaign(matrix, scenario, policy, options);
  } else {
    exec::SerialPolicy policy;
    std::printf("execution policy: %s\n\n", policy.name().data());
    result = campaign::run_campaign(matrix, scenario, policy, options);
  }

  std::printf("%s\n", campaign::make_report(result).c_str());
  if (!options.artifact_dir.empty())
    std::printf("\nartifacts: %s/{replica-NNNN.json, digests.txt, metrics.json, "
                "cells.json, report.txt}\n",
                options.artifact_dir.c_str());
  return 0;
}
