/// Vertical federation (edge-to-supercomputer), end to end:
///  1. a light-source detector produces frames faster than any backhaul;
///  2. an edge NPU triages them and a streaming detector guards the telemetry
///     (the paper's AI-enhanced cybersecurity at the edge);
///  3. a surrogate model is trained at the core on the distilled data and
///     quantized to int8 for edge deployment;
///  4. the real-time control loop shows why the controller must live at the
///     edge rather than across the WAN.
///
/// Run: ./build/examples/edge_to_core

#include <cstdio>

#include "ai/anomaly.hpp"
#include "ai/exec.hpp"
#include "ai/surrogate.hpp"
#include "edge/control.hpp"
#include "edge/instrument.hpp"
#include "edge/pipeline.hpp"
#include "sim/report.hpp"

int main() {
  using namespace hpc;

  std::printf("=== 1. The instrument outruns the WAN ===\n");
  const edge::InstrumentSpec inst = edge::light_source_upgrade_spec();
  const edge::Deployment dep;
  const edge::PipelineOutcome backhaul = edge::backhaul_all(inst, dep);
  const edge::PipelineOutcome triage = edge::edge_triage(inst, dep);
  std::printf("%s: %.1f GB/s raw, uplink %.2f GB/s\n", inst.name.c_str(),
              edge::mean_rate_gbs(inst), dep.wan_bandwidth_gbs);
  std::printf("  backhaul-all: %.0f%% frames lost, decision in %s\n",
              100.0 * backhaul.frames_lost_fraction,
              sim::fmt_time_ns(backhaul.mean_decision_latency_ns).c_str());
  std::printf("  edge-triage:  %.0f%% frames lost, decision in %s, WAN demand %.3f GB/s\n\n",
              100.0 * triage.frames_lost_fraction,
              sim::fmt_time_ns(triage.mean_decision_latency_ns).c_str(),
              triage.wan_gbs_required);

  std::printf("=== 2. Streaming anomaly detection on edge telemetry ===\n");
  ai::StreamingDetector detector(0.05, 4.0, 200);
  sim::Rng rng(7);
  ai::DetectionQuality quality;
  for (int i = 0; i < 20'000; ++i) {
    const bool attack = i > 5'000 && rng.bernoulli(0.005);
    const double sample = attack ? rng.normal(35.0, 3.0) : rng.normal(12.0, 0.8);
    const bool alarm = detector.observe(sample);
    if (attack && alarm) ++quality.true_positives;
    if (attack && !alarm) ++quality.false_negatives;
    if (!attack && alarm) ++quality.false_positives;
    if (!attack && !alarm) ++quality.true_negatives;
  }
  std::printf("  20k telemetry samples, injected attacks: precision %.1f%%, recall %.1f%%\n\n",
              100.0 * quality.precision(), 100.0 * quality.recall());

  std::printf("=== 3. Train a surrogate at the core, quantize it for the edge ===\n");
  const ai::GroundTruth truth = ai::oscillator_truth(1e6);
  sim::Rng srng(8);
  const ai::Surrogate surrogate = ai::train_surrogate(truth, 3'000, 1e3, srng);
  ai::QuantizedExecutor int8(hw::Precision::INT8);
  const ai::Dataset probe = ai::make_oscillator(1'000, srng);
  std::printf("  surrogate test RMSE fp32: %.4f, int8 (edge NPU): %.4f\n",
              surrogate.test_rmse, ai::rmse_with(surrogate.model, probe, int8));
  const ai::LoopResult campaign = ai::run_campaign(truth, surrogate, 100'000, 25, srng);
  std::printf("  100k-step campaign: %.1fx speedup, mean |error| %.4f\n\n",
              campaign.speedup, campaign.mean_abs_error);

  std::printf("=== 4. The control loop must live at the edge ===\n");
  const edge::Plant plant;
  const edge::PidGains gains;
  sim::Table table({"controller placement", "loop delay", "rms error", "in 5% band"});
  for (const auto& [name, delay] :
       {std::pair{"edge NPU", 1}, std::pair{"core over WAN", 50}}) {
    sim::Rng crng(9);
    const edge::ControlResult r = edge::run_control_loop(plant, gains, 1e-3, delay, 30.0, crng);
    table.add_row({name, std::to_string(delay) + " ms", sim::fmt(r.rms_error, 3),
                   sim::fmt(100.0 * r.settled_fraction, 1) + " %"});
  }
  table.print();
  return 0;
}
