/// Quickstart: build a small archipelago (edge + supercomputer + cloud),
/// register a dataset, describe a four-task science workflow, and let the
/// meta-scheduler place it transparently across the federation — with the
/// observability flight recorder attached, so the run exports a Chrome
/// trace (open it in chrome://tracing or https://ui.perfetto.dev) and a
/// metrics snapshot.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart [TRACE_OUT] [METRICS_OUT]

#include <cstdio>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace hpc;
  const char* trace_out = argc > 1 ? argv[1] : "quickstart_trace.json";
  const char* metrics_out = argc > 2 ? argv[2] : "quickstart_metrics.json";

  // 1. Compose the archipelago: three "islands" with very different silicon.
  fed::Site edge = fed::make_edge_site(0, "beamline-edge", 8);
  fed::Site center = fed::make_supercomputer_site(1, "national-center", 64);
  center.admin_domain = 0;
  fed::Site cloud = fed::make_cloud_site(2, "commercial-cloud", 64);
  core::System system({edge, center, cloud});

  // Observability: record what the meta-scheduler does, keyed on simulated
  // time (same seed ⇒ byte-identical artifacts).
  obs::TraceRecorder trace;
  obs::MetricRegistry metrics;
  trace.set_enabled(true);
  system.set_observer(&trace, &metrics);

  // 2. Register where the science data lives (the data foundation).
  const int frames = system.catalog().add(
      "detector-frames", /*size_gb=*/250.0, /*home_site=*/0, /*admin_domain=*/0,
      data::Sensitivity::kInternal, "raw detector frames");

  // 3. Describe the campaign as a workflow DAG.  Op mixes and precisions are
  //    filled in from each task kind; the meta-scheduler does the rest.
  core::Workflow wf;

  core::Task triage;
  triage.name = "triage";
  triage.kind = core::TaskKind::kInfer;    // int8-friendly, edge-NPU shaped
  triage.input_datasets = {frames};
  triage.output_sensitivity = data::Sensitivity::kPublic;
  triage.output_gb = 12.0;
  triage.job.nodes = 2;
  triage.job.total_gflop = 2e4;
  const int t_triage = wf.add(triage);

  core::Task simulate;
  simulate.name = "simulate";
  simulate.kind = core::TaskKind::kSimulate;  // fp64 stencil/FFT, HPC shaped
  simulate.deps = {t_triage};
  simulate.input_tasks = {t_triage};  // consumes the triaged frames
  simulate.output_sensitivity = data::Sensitivity::kPublic;
  simulate.output_gb = 40.0;
  simulate.job.nodes = 16;
  simulate.job.total_gflop = 5e5;
  const int t_sim = wf.add(simulate);

  core::Task train;
  train.name = "train-surrogate";
  train.kind = core::TaskKind::kTrain;     // bf16 GEMM, accelerator shaped
  train.deps = {t_sim};
  train.input_tasks = {t_sim};  // learns from the simulation output
  train.output_sensitivity = data::Sensitivity::kPublic;
  train.output_gb = 1.0;
  train.job.nodes = 8;
  train.job.total_gflop = 8e5;
  const int t_train = wf.add(train);

  core::Task deploy;
  deploy.name = "deploy-inference";
  deploy.kind = core::TaskKind::kInfer;
  deploy.deps = {t_train};
  deploy.input_tasks = {t_train};  // ships the trained model
  deploy.output_gb = 0.0;
  deploy.job.nodes = 1;
  deploy.job.total_gflop = 5e2;
  wf.add(deploy);

  // 4. Run it with gravity-aware placement.
  const core::WorkflowResult result = system.run(wf, core::PlacementPolicy::kGravityAware);

  std::printf("Archipelago quickstart — 4-task campaign across %zu sites\n\n",
              system.sites().size());
  sim::Table table({"task", "site", "partition", "start", "finish", "staged", "cost-$"});
  for (const core::TaskOutcome& o : result.outcomes) {
    const core::Task& task = wf.task(o.task);
    const fed::Site& site = system.sites()[static_cast<std::size_t>(o.site)];
    table.add_row({task.name, site.name,
                   site.cluster.partitions[static_cast<std::size_t>(o.partition)].name,
                   sim::fmt_time_ns(static_cast<double>(o.start)),
                   sim::fmt_time_ns(static_cast<double>(o.finish)),
                   sim::fmt_bytes(o.staged_gb * 1e9), sim::fmt(o.cost_usd, 2)});
  }
  table.print();

  std::printf("\nmakespan: %s   WAN moved: %s   cost: $%.2f   energy: %.2f MJ\n",
              sim::fmt_time_ns(static_cast<double>(result.makespan)).c_str(),
              sim::fmt_bytes(result.wan_gb_moved * 1e9).c_str(), result.total_cost_usd,
              result.total_energy_j / 1e6);

  // 5. Provenance came along for free: the catalog knows how every dataset
  //    was derived.
  const int last_output = result.outcomes[2].output_dataset;
  if (last_output >= 0) {
    std::printf("\nprovenance of '%s':\n",
                system.catalog().get(last_output).name.c_str());
    for (const data::ProvenanceStep& step : system.catalog().provenance(last_output))
      std::printf("  [%d] %s\n", step.dataset, step.description.c_str());
  }

  // 6. Export the flight recorder: a Chrome trace of every placed task and a
  //    metrics snapshot (validate/summarize with tools/tracecat).
  if (!trace.export_chrome_trace(trace_out) || !metrics.write_snapshot(metrics_out)) {
    std::fprintf(stderr, "failed to write observability artifacts\n");
    return 1;
  }
  std::printf("\ntrace: %s (%zu events)   metrics: %s\n", trace_out, trace.size(),
              metrics_out);
  return 0;
}
