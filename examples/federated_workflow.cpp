/// Horizontal federation with data gravity: a four-site federation (two
/// campuses, a national center, a commercial cloud) absorbs a realistic
/// mixed workload stream.  Shows per-policy outcomes, where jobs actually
/// ran, and the inter-site accounting ledger the paper says "could lay the
/// foundation to an Open Compute Exchange".
///
/// Run: ./build/examples/federated_workflow

#include <cstdio>
#include <string>
#include <vector>

#include "fed/federation.hpp"
#include "sched/workload.hpp"
#include "sim/report.hpp"

int main() {
  using namespace hpc;

  auto make_sites = [] {
    fed::Site campus_a = fed::make_onprem_site(0, "campus-a", 12, 4);
    fed::Site campus_b = fed::make_onprem_site(1, "campus-b", 8, 8);
    campus_b.admin_domain = 0;
    fed::Site center = fed::make_supercomputer_site(2, "national-center", 48);
    center.admin_domain = 0;
    fed::Site cloud = fed::make_cloud_site(3, "cloud", 48, 0.15);
    return std::vector<fed::Site>{campus_a, campus_b, center, cloud};
  };

  auto make_jobs = [] {
    sim::Rng rng(11);
    sched::WorkloadConfig cfg;
    cfg.jobs = 180;
    cfg.mean_interarrival_s = 20.0;
    cfg.max_nodes = 8;
    cfg.dataset_gb_per_tflop = 25.0;  // data-heavy science
    return sched::generate_workload(cfg, rng);
  };

  std::printf("Federated workflow: 180 mixed jobs submitted at campus-a\n\n");

  sim::Table policy_table({"placement policy", "mean completion", "p95", "WAN moved",
                           "cost-$"});
  fed::FederationResult gravity_result;
  for (const auto policy : {fed::MetaPolicy::kHomeOnly, fed::MetaPolicy::kComputeOnly,
                            fed::MetaPolicy::kDataGravity, fed::MetaPolicy::kCheapest}) {
    fed::FederationConfig cfg;
    cfg.stage = fed::FederationStage::kGrid;
    cfg.policy = policy;
    cfg.seed = 13;
    fed::FederationSim fsim(make_sites(), cfg);
    fsim.submit_all(make_jobs(), 0);
    fed::FederationResult r = fsim.run();
    policy_table.add_row({std::string(fed::name_of(policy)),
                          sim::fmt(r.mean_completion_s, 1) + " s",
                          sim::fmt(r.p95_completion_s, 1) + " s",
                          sim::fmt_bytes(r.wan_gb_moved * 1e9),
                          sim::fmt(r.total_cost_usd, 0)});
    if (policy == fed::MetaPolicy::kDataGravity) gravity_result = std::move(r);
  }
  policy_table.print();

  // Where did gravity-aware placement actually run things?
  const std::vector<fed::Site> sites = make_sites();
  std::vector<int> per_site(sites.size(), 0);
  for (const fed::FedPlacement& p : gravity_result.placements)
    if (p.site >= 0) ++per_site[static_cast<std::size_t>(p.site)];
  std::printf("\ngravity-aware placement by site:\n");
  sim::Table sites_table({"site", "kind", "jobs run", "earned-$", "spent-$", "net-$"});
  for (const fed::Site& s : sites) {
    sites_table.add_row({s.name, std::string(fed::name_of(s.kind)),
                         std::to_string(per_site[static_cast<std::size_t>(s.id)]),
                         sim::fmt(gravity_result.ledger.earned_usd(s.id), 2),
                         sim::fmt(gravity_result.ledger.spent_usd(s.id), 2),
                         sim::fmt(gravity_result.ledger.net_usd(s.id), 2)});
  }
  sites_table.print();

  std::printf("\nledger: %.1f node-hours exchanged, %.1f GB over the WAN, %d/%zu jobs completed\n",
              gravity_result.ledger.total_node_hours(), gravity_result.wan_gb_moved,
              gravity_result.jobs_completed, gravity_result.placements.size());
  return 0;
}
