/// Horizontal federation through the Open Compute Exchange: sites with spare
/// capacity sell node-hours, users with demand peaks buy them, brokers quote
/// liquidity and speculators trade momentum — the full cast of the paper's
/// Section III.F economy.  Prints the price path converging to the
/// competitive equilibrium and the final zero-sum settlement.
///
/// Run: ./build/examples/compute_exchange

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "market/exchange.hpp"
#include "sim/report.hpp"

int main() {
  using namespace hpc;

  market::Exchange exchange(2026);
  sim::Rng rng(7);

  std::vector<double> costs;
  std::vector<double> values;
  std::vector<int> provider_ids;
  std::vector<int> consumer_ids;

  // Sites with spare capacity: marginal cost ~ power + amortization.
  // Each offers 3 node-hours per round, so the unit supply curve gets three
  // entries per site (and likewise two per user below).
  for (int s = 0; s < 12; ++s) {
    const double cost = rng.uniform(0.6, 1.6);
    costs.insert(costs.end(), 3, cost);
    provider_ids.push_back(exchange.add_agent(
        std::make_unique<market::ProviderAgent>("site-" + std::to_string(s), cost, 3.0)));
  }
  // Users with deadlines: willingness to pay spread well above cost.
  for (int u = 0; u < 18; ++u) {
    const double value = rng.uniform(0.9, 2.8);
    values.insert(values.end(), 2, value);
    consumer_ids.push_back(exchange.add_agent(
        std::make_unique<market::ConsumerAgent>("user-" + std::to_string(u), value, 2.0)));
  }
  // Liquidity and noise.
  exchange.add_agent(std::make_unique<market::BrokerAgent>("broker"));
  exchange.add_agent(std::make_unique<market::SpeculatorAgent>("speculator"));

  const market::EquilibriumPoint eq = market::competitive_equilibrium(costs, values);
  std::printf("Open Compute Exchange: 12 providers, 18 consumers, 1 broker, 1 speculator\n");
  std::printf("competitive equilibrium: p* = $%.3f/node-hour, %d units/round\n\n",
              eq.price, static_cast<int>(eq.quantity));

  exchange.run_rounds(200);

  std::printf("price discovery (volume-weighted round price):\n");
  sim::Table path({"rounds", "mean price", "mean |p - p*|", "volume/round"});
  const auto& prices = exchange.round_prices();
  const auto& volumes = exchange.round_volumes();
  for (const auto& [from, to] : {std::pair{0, 20}, {20, 60}, {60, 120}, {120, 200}}) {
    double p = 0.0;
    double dev = 0.0;
    double vol = 0.0;
    int n = 0;
    for (int i = from; i < to; ++i) {
      if (prices[static_cast<std::size_t>(i)] <= 0.0) continue;
      p += prices[static_cast<std::size_t>(i)];
      dev += std::abs(prices[static_cast<std::size_t>(i)] - eq.price);
      vol += volumes[static_cast<std::size_t>(i)];
      ++n;
    }
    if (n == 0) continue;
    path.add_row({std::to_string(from + 1) + "-" + std::to_string(to),
                  "$" + sim::fmt(p / n, 3), sim::fmt(dev / n, 3),
                  sim::fmt(vol / (to - from), 2)});
  }
  path.print();

  std::printf("\nsettlement (zero-sum check: total cash imbalance = $%.9f):\n",
              exchange.cash_imbalance());
  sim::Table ledger({"agent", "role", "cash", "inventory (node-h)"});
  for (const int id : provider_ids) {
    const market::Agent& a = exchange.agent(id);
    // archlint: allow(float-eq): hide exact-zero rows only; any residual shows
    if (a.cash() != 0.0)
      ledger.add_row({a.name(), "provider", "$" + sim::fmt(a.cash(), 2),
                      sim::fmt(a.inventory(), 1)});
  }
  for (const int id : consumer_ids) {
    const market::Agent& a = exchange.agent(id);
    // archlint: allow(float-eq): hide exact-zero rows only; any residual shows
    if (a.cash() != 0.0)
      ledger.add_row({a.name(), "consumer", "$" + sim::fmt(a.cash(), 2),
                      sim::fmt(a.inventory(), 1)});
  }
  ledger.print();
  std::printf("\ntotal traded: %.1f node-hours over 200 rounds\n", exchange.total_volume());
  return 0;
}
