/// HPC-center designer: explore the paper's whole design space at once.
/// Given a facility power budget and an acquisition budget, sweep
/// cluster mixes x cooling technologies x platform-enablement strategies and
/// report what each design delivers per application domain — the
/// "combinatorial equation" of Section III.E made explicit.
///
/// Run: ./build/examples/design_space [facility_mw] [capex_musd]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "hw/catalog.hpp"
#include "hw/facility.hpp"
#include "hw/platform.hpp"
#include "sched/cluster.hpp"
#include "sched/workload.hpp"
#include "sim/report.hpp"

namespace {

using namespace hpc;

/// Domain throughput of `count` devices of one family, in Pflop/s.
double domain_pflops(const hw::DeviceSpec& dev, double count, sched::JobKind kind) {
  sched::Job probe;
  probe.total_gflop = 1e5;
  probe.mix = sched::mix_of(kind);
  probe.precision = sched::precision_of(kind);
  probe.nodes = 1;
  const double t_ns = sched::job_runtime_ns(probe, dev, 1);
  if (t_ns >= 1e17) return 0.0;
  return probe.total_gflop / (t_ns * 1e-9) * count / 1e6;
}

struct Design {
  std::string name;
  std::vector<std::pair<hw::DeviceSpec, double>> share;  ///< device, power share
};

}  // namespace

int main(int argc, char** argv) {
  const double facility_mw = argc > 1 ? std::atof(argv[1]) : 20.0;
  const double capex_budget_musd = argc > 2 ? std::atof(argv[2]) : 600.0;

  std::printf("HPC-center designer: %.0f MW facility, $%.0fM acquisition budget\n\n",
              facility_mw, capex_budget_musd);

  const std::vector<Design> designs{
      {"general-purpose", {{hw::cpu_server_spec(), 1.0}}},
      {"gpu-centric", {{hw::cpu_server_spec(), 0.25}, {hw::gpu_hpc_spec(), 0.75}}},
      {"diversified",
       {{hw::cpu_server_spec(), 0.25},
        {hw::gpu_hpc_spec(), 0.40},
        {hw::systolic_spec(), 0.20},
        {hw::analog_dpe_device_spec(), 0.05},
        {hw::fpga_spec(), 0.10}}},
  };

  for (const hw::Cooling cooling : {hw::Cooling::kAirCooled, hw::Cooling::kDirectLiquid}) {
    const hw::CoolingSpec cspec = hw::cooling_spec(cooling);
    std::printf("=== cooling: %s (%.0f kW/rack, PUE %.2f) ===\n",
                std::string(hw::name_of(cooling)).c_str(), cspec.max_rack_kw, cspec.pue);
    sim::Table t({"design", "devices", "capex-M$", "hpc-sim Pf/s", "ai-train Pf/s",
                  "ai-infer Pf/s", "analytics Pf/s", "fits budget"});
    for (const Design& d : designs) {
      double devices = 0.0;
      double capex = 0.0;
      double sim_p = 0.0;
      double train_p = 0.0;
      double infer_p = 0.0;
      double ana_p = 0.0;
      for (const auto& [dev, power_share] : d.share) {
        const hw::RackPlan rack = hw::pack_rack(dev, cspec);
        const hw::FacilityPlan plan = hw::plan_facility(rack, facility_mw * power_share);
        devices += plan.devices;
        capex += plan.capex_usd;
        sim_p += domain_pflops(dev, plan.devices, sched::JobKind::kHpcSimulation);
        train_p += domain_pflops(dev, plan.devices, sched::JobKind::kAiTraining);
        infer_p += domain_pflops(dev, plan.devices, sched::JobKind::kAiInference);
        ana_p += domain_pflops(dev, plan.devices, sched::JobKind::kAnalytics);
      }
      t.add_row({d.name, sim::fmt(devices, 0), sim::fmt(capex / 1e6, 0),
                 sim::fmt(sim_p, 2), sim::fmt(train_p, 1), sim::fmt(infer_p, 1),
                 sim::fmt(ana_p, 3),
                 capex / 1e6 <= capex_budget_musd ? "yes" : "NO"});
    }
    t.print();
    std::printf("\n");
  }

  std::printf("=== platform enablement for the diversified design (5 silicon kinds) ===\n");
  const hw::PlatformModel custom = hw::custom_board_model();
  const hw::PlatformModel standard = hw::standard_module_model();
  sim::Table p({"strategy", "NRE+premium for 5 kinds @2k units", "time to field all 5"});
  p.add_row({custom.name,
             "$" + sim::fmt(hw::enablement_cost_usd(custom, 5, 2'000.0) / 1e6, 1) + "M",
             sim::fmt(custom.integration_weeks, 0) + " weeks each"});
  p.add_row({standard.name,
             "$" + sim::fmt(hw::enablement_cost_usd(standard, 5, 2'000.0) / 1e6, 1) + "M",
             sim::fmt(standard.integration_weeks, 0) + " weeks each"});
  p.print();

  std::printf("\n(the diversified design only pencils out with the standard module —\n"
              " the paper's Section III.E argument in one table)\n");
  return 0;
}
