file(REMOVE_RECURSE
  "CMakeFiles/edge_to_core.dir/edge_to_core.cpp.o"
  "CMakeFiles/edge_to_core.dir/edge_to_core.cpp.o.d"
  "edge_to_core"
  "edge_to_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_to_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
