# Empty compiler generated dependencies file for federated_workflow.
# This may be replaced when dependencies are built.
