file(REMOVE_RECURSE
  "CMakeFiles/federated_workflow.dir/federated_workflow.cpp.o"
  "CMakeFiles/federated_workflow.dir/federated_workflow.cpp.o.d"
  "federated_workflow"
  "federated_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
