# Empty dependencies file for compute_exchange.
# This may be replaced when dependencies are built.
