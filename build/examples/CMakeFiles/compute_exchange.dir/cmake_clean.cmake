file(REMOVE_RECURSE
  "CMakeFiles/compute_exchange.dir/compute_exchange.cpp.o"
  "CMakeFiles/compute_exchange.dir/compute_exchange.cpp.o.d"
  "compute_exchange"
  "compute_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
