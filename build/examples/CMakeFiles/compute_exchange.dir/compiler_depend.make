# Empty compiler generated dependencies file for compute_exchange.
# This may be replaced when dependencies are built.
