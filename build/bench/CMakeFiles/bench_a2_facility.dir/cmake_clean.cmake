file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_facility.dir/bench_a2_facility.cpp.o"
  "CMakeFiles/bench_a2_facility.dir/bench_a2_facility.cpp.o.d"
  "bench_a2_facility"
  "bench_a2_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
