# Empty dependencies file for bench_c1_specialization.
# This may be replaced when dependencies are built.
