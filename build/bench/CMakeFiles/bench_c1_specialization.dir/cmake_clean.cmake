file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_specialization.dir/bench_c1_specialization.cpp.o"
  "CMakeFiles/bench_c1_specialization.dir/bench_c1_specialization.cpp.o.d"
  "bench_c1_specialization"
  "bench_c1_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
