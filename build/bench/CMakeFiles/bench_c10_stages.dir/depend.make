# Empty dependencies file for bench_c10_stages.
# This may be replaced when dependencies are built.
