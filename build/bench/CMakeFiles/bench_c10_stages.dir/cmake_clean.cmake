file(REMOVE_RECURSE
  "CMakeFiles/bench_c10_stages.dir/bench_c10_stages.cpp.o"
  "CMakeFiles/bench_c10_stages.dir/bench_c10_stages.cpp.o.d"
  "bench_c10_stages"
  "bench_c10_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c10_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
