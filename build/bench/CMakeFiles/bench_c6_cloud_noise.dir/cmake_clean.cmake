file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_cloud_noise.dir/bench_c6_cloud_noise.cpp.o"
  "CMakeFiles/bench_c6_cloud_noise.dir/bench_c6_cloud_noise.cpp.o.d"
  "bench_c6_cloud_noise"
  "bench_c6_cloud_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_cloud_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
