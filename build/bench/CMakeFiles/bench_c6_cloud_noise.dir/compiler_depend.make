# Empty compiler generated dependencies file for bench_c6_cloud_noise.
# This may be replaced when dependencies are built.
