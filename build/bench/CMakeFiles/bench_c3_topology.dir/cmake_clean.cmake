file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_topology.dir/bench_c3_topology.cpp.o"
  "CMakeFiles/bench_c3_topology.dir/bench_c3_topology.cpp.o.d"
  "bench_c3_topology"
  "bench_c3_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
