# Empty compiler generated dependencies file for bench_c4_analog.
# This may be replaced when dependencies are built.
