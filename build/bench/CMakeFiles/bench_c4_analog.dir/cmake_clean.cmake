file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_analog.dir/bench_c4_analog.cpp.o"
  "CMakeFiles/bench_c4_analog.dir/bench_c4_analog.cpp.o.d"
  "bench_c4_analog"
  "bench_c4_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
