# Empty dependencies file for bench_c8_exchange.
# This may be replaced when dependencies are built.
