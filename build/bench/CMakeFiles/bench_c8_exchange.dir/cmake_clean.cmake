file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_exchange.dir/bench_c8_exchange.cpp.o"
  "CMakeFiles/bench_c8_exchange.dir/bench_c8_exchange.cpp.o.d"
  "bench_c8_exchange"
  "bench_c8_exchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
