file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_delivery.dir/bench_f3_delivery.cpp.o"
  "CMakeFiles/bench_f3_delivery.dir/bench_f3_delivery.cpp.o.d"
  "bench_f3_delivery"
  "bench_f3_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
