file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_switch.dir/bench_a5_switch.cpp.o"
  "CMakeFiles/bench_a5_switch.dir/bench_a5_switch.cpp.o.d"
  "bench_a5_switch"
  "bench_a5_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
