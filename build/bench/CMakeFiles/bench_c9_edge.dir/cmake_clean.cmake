file(REMOVE_RECURSE
  "CMakeFiles/bench_c9_edge.dir/bench_c9_edge.cpp.o"
  "CMakeFiles/bench_c9_edge.dir/bench_c9_edge.cpp.o.d"
  "bench_c9_edge"
  "bench_c9_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c9_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
