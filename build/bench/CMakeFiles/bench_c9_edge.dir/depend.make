# Empty dependencies file for bench_c9_edge.
# This may be replaced when dependencies are built.
