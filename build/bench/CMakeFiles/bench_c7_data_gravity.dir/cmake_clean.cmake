file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_data_gravity.dir/bench_c7_data_gravity.cpp.o"
  "CMakeFiles/bench_c7_data_gravity.dir/bench_c7_data_gravity.cpp.o.d"
  "bench_c7_data_gravity"
  "bench_c7_data_gravity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_data_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
