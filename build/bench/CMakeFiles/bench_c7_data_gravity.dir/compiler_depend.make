# Empty compiler generated dependencies file for bench_c7_data_gravity.
# This may be replaced when dependencies are built.
