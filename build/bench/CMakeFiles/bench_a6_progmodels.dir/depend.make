# Empty dependencies file for bench_a6_progmodels.
# This may be replaced when dependencies are built.
