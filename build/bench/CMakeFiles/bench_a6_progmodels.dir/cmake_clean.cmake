file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_progmodels.dir/bench_a6_progmodels.cpp.o"
  "CMakeFiles/bench_a6_progmodels.dir/bench_a6_progmodels.cpp.o.d"
  "bench_a6_progmodels"
  "bench_a6_progmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_progmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
