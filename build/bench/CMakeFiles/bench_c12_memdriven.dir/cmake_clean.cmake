file(REMOVE_RECURSE
  "CMakeFiles/bench_c12_memdriven.dir/bench_c12_memdriven.cpp.o"
  "CMakeFiles/bench_c12_memdriven.dir/bench_c12_memdriven.cpp.o.d"
  "bench_c12_memdriven"
  "bench_c12_memdriven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c12_memdriven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
