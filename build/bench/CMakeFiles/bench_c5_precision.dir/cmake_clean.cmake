file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_precision.dir/bench_c5_precision.cpp.o"
  "CMakeFiles/bench_c5_precision.dir/bench_c5_precision.cpp.o.d"
  "bench_c5_precision"
  "bench_c5_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
