# Empty compiler generated dependencies file for bench_c5_precision.
# This may be replaced when dependencies are built.
