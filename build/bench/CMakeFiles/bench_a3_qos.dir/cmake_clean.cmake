file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_qos.dir/bench_a3_qos.cpp.o"
  "CMakeFiles/bench_a3_qos.dir/bench_a3_qos.cpp.o.d"
  "bench_a3_qos"
  "bench_a3_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
