file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_interconnect.dir/bench_f2_interconnect.cpp.o"
  "CMakeFiles/bench_f2_interconnect.dir/bench_f2_interconnect.cpp.o.d"
  "bench_f2_interconnect"
  "bench_f2_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
