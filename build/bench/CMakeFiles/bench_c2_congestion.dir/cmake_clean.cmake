file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_congestion.dir/bench_c2_congestion.cpp.o"
  "CMakeFiles/bench_c2_congestion.dir/bench_c2_congestion.cpp.o.d"
  "bench_c2_congestion"
  "bench_c2_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
