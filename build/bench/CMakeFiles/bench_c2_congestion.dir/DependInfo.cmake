
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_c2_congestion.cpp" "bench/CMakeFiles/bench_c2_congestion.dir/bench_c2_congestion.cpp.o" "gcc" "bench/CMakeFiles/bench_c2_congestion.dir/bench_c2_congestion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/hpc_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hpc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/hpc_market.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/hpc_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hpc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ai/CMakeFiles/hpc_ai.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
