# Empty dependencies file for bench_c2_congestion.
# This may be replaced when dependencies are built.
