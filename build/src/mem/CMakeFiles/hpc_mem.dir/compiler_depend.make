# Empty compiler generated dependencies file for hpc_mem.
# This may be replaced when dependencies are built.
