
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/datamove.cpp" "src/mem/CMakeFiles/hpc_mem.dir/datamove.cpp.o" "gcc" "src/mem/CMakeFiles/hpc_mem.dir/datamove.cpp.o.d"
  "/root/repo/src/mem/fabric.cpp" "src/mem/CMakeFiles/hpc_mem.dir/fabric.cpp.o" "gcc" "src/mem/CMakeFiles/hpc_mem.dir/fabric.cpp.o.d"
  "/root/repo/src/mem/tier.cpp" "src/mem/CMakeFiles/hpc_mem.dir/tier.cpp.o" "gcc" "src/mem/CMakeFiles/hpc_mem.dir/tier.cpp.o.d"
  "/root/repo/src/mem/tiering.cpp" "src/mem/CMakeFiles/hpc_mem.dir/tiering.cpp.o" "gcc" "src/mem/CMakeFiles/hpc_mem.dir/tiering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
