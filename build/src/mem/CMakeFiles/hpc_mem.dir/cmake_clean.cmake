file(REMOVE_RECURSE
  "CMakeFiles/hpc_mem.dir/datamove.cpp.o"
  "CMakeFiles/hpc_mem.dir/datamove.cpp.o.d"
  "CMakeFiles/hpc_mem.dir/fabric.cpp.o"
  "CMakeFiles/hpc_mem.dir/fabric.cpp.o.d"
  "CMakeFiles/hpc_mem.dir/tier.cpp.o"
  "CMakeFiles/hpc_mem.dir/tier.cpp.o.d"
  "CMakeFiles/hpc_mem.dir/tiering.cpp.o"
  "CMakeFiles/hpc_mem.dir/tiering.cpp.o.d"
  "libhpc_mem.a"
  "libhpc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
