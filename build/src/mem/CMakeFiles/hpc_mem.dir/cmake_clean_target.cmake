file(REMOVE_RECURSE
  "libhpc_mem.a"
)
