file(REMOVE_RECURSE
  "CMakeFiles/hpc_sched.dir/cluster.cpp.o"
  "CMakeFiles/hpc_sched.dir/cluster.cpp.o.d"
  "CMakeFiles/hpc_sched.dir/job.cpp.o"
  "CMakeFiles/hpc_sched.dir/job.cpp.o.d"
  "CMakeFiles/hpc_sched.dir/scheduler.cpp.o"
  "CMakeFiles/hpc_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/hpc_sched.dir/workload.cpp.o"
  "CMakeFiles/hpc_sched.dir/workload.cpp.o.d"
  "libhpc_sched.a"
  "libhpc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
