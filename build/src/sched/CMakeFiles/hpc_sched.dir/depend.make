# Empty dependencies file for hpc_sched.
# This may be replaced when dependencies are built.
