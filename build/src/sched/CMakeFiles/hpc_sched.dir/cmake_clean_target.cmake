file(REMOVE_RECURSE
  "libhpc_sched.a"
)
