# Empty compiler generated dependencies file for hpc_sim.
# This may be replaced when dependencies are built.
