file(REMOVE_RECURSE
  "CMakeFiles/hpc_sim.dir/report.cpp.o"
  "CMakeFiles/hpc_sim.dir/report.cpp.o.d"
  "CMakeFiles/hpc_sim.dir/rng.cpp.o"
  "CMakeFiles/hpc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/hpc_sim.dir/simulator.cpp.o"
  "CMakeFiles/hpc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hpc_sim.dir/stats.cpp.o"
  "CMakeFiles/hpc_sim.dir/stats.cpp.o.d"
  "libhpc_sim.a"
  "libhpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
