file(REMOVE_RECURSE
  "libhpc_sim.a"
)
