file(REMOVE_RECURSE
  "libhpc_data.a"
)
