file(REMOVE_RECURSE
  "CMakeFiles/hpc_data.dir/catalog.cpp.o"
  "CMakeFiles/hpc_data.dir/catalog.cpp.o.d"
  "libhpc_data.a"
  "libhpc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
