# Empty compiler generated dependencies file for hpc_data.
# This may be replaced when dependencies are built.
