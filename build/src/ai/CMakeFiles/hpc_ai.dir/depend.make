# Empty dependencies file for hpc_ai.
# This may be replaced when dependencies are built.
