file(REMOVE_RECURSE
  "libhpc_ai.a"
)
