file(REMOVE_RECURSE
  "CMakeFiles/hpc_ai.dir/anomaly.cpp.o"
  "CMakeFiles/hpc_ai.dir/anomaly.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/datasets.cpp.o"
  "CMakeFiles/hpc_ai.dir/datasets.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/exec.cpp.o"
  "CMakeFiles/hpc_ai.dir/exec.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/explain.cpp.o"
  "CMakeFiles/hpc_ai.dir/explain.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/linalg.cpp.o"
  "CMakeFiles/hpc_ai.dir/linalg.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/mlp.cpp.o"
  "CMakeFiles/hpc_ai.dir/mlp.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/model_io.cpp.o"
  "CMakeFiles/hpc_ai.dir/model_io.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/surrogate.cpp.o"
  "CMakeFiles/hpc_ai.dir/surrogate.cpp.o.d"
  "CMakeFiles/hpc_ai.dir/synthetic.cpp.o"
  "CMakeFiles/hpc_ai.dir/synthetic.cpp.o.d"
  "libhpc_ai.a"
  "libhpc_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
