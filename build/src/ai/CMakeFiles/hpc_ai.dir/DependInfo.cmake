
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ai/anomaly.cpp" "src/ai/CMakeFiles/hpc_ai.dir/anomaly.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/anomaly.cpp.o.d"
  "/root/repo/src/ai/datasets.cpp" "src/ai/CMakeFiles/hpc_ai.dir/datasets.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/datasets.cpp.o.d"
  "/root/repo/src/ai/exec.cpp" "src/ai/CMakeFiles/hpc_ai.dir/exec.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/exec.cpp.o.d"
  "/root/repo/src/ai/explain.cpp" "src/ai/CMakeFiles/hpc_ai.dir/explain.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/explain.cpp.o.d"
  "/root/repo/src/ai/linalg.cpp" "src/ai/CMakeFiles/hpc_ai.dir/linalg.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/linalg.cpp.o.d"
  "/root/repo/src/ai/mlp.cpp" "src/ai/CMakeFiles/hpc_ai.dir/mlp.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/mlp.cpp.o.d"
  "/root/repo/src/ai/model_io.cpp" "src/ai/CMakeFiles/hpc_ai.dir/model_io.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/model_io.cpp.o.d"
  "/root/repo/src/ai/surrogate.cpp" "src/ai/CMakeFiles/hpc_ai.dir/surrogate.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/surrogate.cpp.o.d"
  "/root/repo/src/ai/synthetic.cpp" "src/ai/CMakeFiles/hpc_ai.dir/synthetic.cpp.o" "gcc" "src/ai/CMakeFiles/hpc_ai.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpc_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
