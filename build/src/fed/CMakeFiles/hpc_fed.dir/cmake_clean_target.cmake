file(REMOVE_RECURSE
  "libhpc_fed.a"
)
