file(REMOVE_RECURSE
  "CMakeFiles/hpc_fed.dir/accounting.cpp.o"
  "CMakeFiles/hpc_fed.dir/accounting.cpp.o.d"
  "CMakeFiles/hpc_fed.dir/federation.cpp.o"
  "CMakeFiles/hpc_fed.dir/federation.cpp.o.d"
  "CMakeFiles/hpc_fed.dir/noise.cpp.o"
  "CMakeFiles/hpc_fed.dir/noise.cpp.o.d"
  "CMakeFiles/hpc_fed.dir/site.cpp.o"
  "CMakeFiles/hpc_fed.dir/site.cpp.o.d"
  "libhpc_fed.a"
  "libhpc_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
