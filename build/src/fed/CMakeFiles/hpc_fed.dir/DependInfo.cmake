
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fed/accounting.cpp" "src/fed/CMakeFiles/hpc_fed.dir/accounting.cpp.o" "gcc" "src/fed/CMakeFiles/hpc_fed.dir/accounting.cpp.o.d"
  "/root/repo/src/fed/federation.cpp" "src/fed/CMakeFiles/hpc_fed.dir/federation.cpp.o" "gcc" "src/fed/CMakeFiles/hpc_fed.dir/federation.cpp.o.d"
  "/root/repo/src/fed/noise.cpp" "src/fed/CMakeFiles/hpc_fed.dir/noise.cpp.o" "gcc" "src/fed/CMakeFiles/hpc_fed.dir/noise.cpp.o.d"
  "/root/repo/src/fed/site.cpp" "src/fed/CMakeFiles/hpc_fed.dir/site.cpp.o" "gcc" "src/fed/CMakeFiles/hpc_fed.dir/site.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hpc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hpc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
