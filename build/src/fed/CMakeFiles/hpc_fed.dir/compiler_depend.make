# Empty compiler generated dependencies file for hpc_fed.
# This may be replaced when dependencies are built.
