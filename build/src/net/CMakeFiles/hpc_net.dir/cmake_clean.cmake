file(REMOVE_RECURSE
  "CMakeFiles/hpc_net.dir/collectives.cpp.o"
  "CMakeFiles/hpc_net.dir/collectives.cpp.o.d"
  "CMakeFiles/hpc_net.dir/flowsim.cpp.o"
  "CMakeFiles/hpc_net.dir/flowsim.cpp.o.d"
  "CMakeFiles/hpc_net.dir/link.cpp.o"
  "CMakeFiles/hpc_net.dir/link.cpp.o.d"
  "CMakeFiles/hpc_net.dir/network.cpp.o"
  "CMakeFiles/hpc_net.dir/network.cpp.o.d"
  "CMakeFiles/hpc_net.dir/progmodel.cpp.o"
  "CMakeFiles/hpc_net.dir/progmodel.cpp.o.d"
  "CMakeFiles/hpc_net.dir/switchgen.cpp.o"
  "CMakeFiles/hpc_net.dir/switchgen.cpp.o.d"
  "CMakeFiles/hpc_net.dir/topology.cpp.o"
  "CMakeFiles/hpc_net.dir/topology.cpp.o.d"
  "libhpc_net.a"
  "libhpc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
