file(REMOVE_RECURSE
  "libhpc_net.a"
)
