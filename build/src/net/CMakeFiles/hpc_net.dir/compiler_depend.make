# Empty compiler generated dependencies file for hpc_net.
# This may be replaced when dependencies are built.
