
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/collectives.cpp" "src/net/CMakeFiles/hpc_net.dir/collectives.cpp.o" "gcc" "src/net/CMakeFiles/hpc_net.dir/collectives.cpp.o.d"
  "/root/repo/src/net/flowsim.cpp" "src/net/CMakeFiles/hpc_net.dir/flowsim.cpp.o" "gcc" "src/net/CMakeFiles/hpc_net.dir/flowsim.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/hpc_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/hpc_net.dir/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/hpc_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/hpc_net.dir/network.cpp.o.d"
  "/root/repo/src/net/progmodel.cpp" "src/net/CMakeFiles/hpc_net.dir/progmodel.cpp.o" "gcc" "src/net/CMakeFiles/hpc_net.dir/progmodel.cpp.o.d"
  "/root/repo/src/net/switchgen.cpp" "src/net/CMakeFiles/hpc_net.dir/switchgen.cpp.o" "gcc" "src/net/CMakeFiles/hpc_net.dir/switchgen.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/hpc_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/hpc_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
