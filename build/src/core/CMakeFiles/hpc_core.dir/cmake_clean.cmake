file(REMOVE_RECURSE
  "CMakeFiles/hpc_core.dir/datart.cpp.o"
  "CMakeFiles/hpc_core.dir/datart.cpp.o.d"
  "CMakeFiles/hpc_core.dir/system.cpp.o"
  "CMakeFiles/hpc_core.dir/system.cpp.o.d"
  "CMakeFiles/hpc_core.dir/workflow.cpp.o"
  "CMakeFiles/hpc_core.dir/workflow.cpp.o.d"
  "libhpc_core.a"
  "libhpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
