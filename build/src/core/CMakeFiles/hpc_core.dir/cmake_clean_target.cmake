file(REMOVE_RECURSE
  "libhpc_core.a"
)
