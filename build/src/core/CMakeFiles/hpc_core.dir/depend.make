# Empty dependencies file for hpc_core.
# This may be replaced when dependencies are built.
