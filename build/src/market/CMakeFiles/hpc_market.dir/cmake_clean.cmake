file(REMOVE_RECURSE
  "CMakeFiles/hpc_market.dir/agents.cpp.o"
  "CMakeFiles/hpc_market.dir/agents.cpp.o.d"
  "CMakeFiles/hpc_market.dir/exchange.cpp.o"
  "CMakeFiles/hpc_market.dir/exchange.cpp.o.d"
  "CMakeFiles/hpc_market.dir/forwards.cpp.o"
  "CMakeFiles/hpc_market.dir/forwards.cpp.o.d"
  "CMakeFiles/hpc_market.dir/orderbook.cpp.o"
  "CMakeFiles/hpc_market.dir/orderbook.cpp.o.d"
  "libhpc_market.a"
  "libhpc_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
