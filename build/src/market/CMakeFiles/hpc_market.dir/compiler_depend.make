# Empty compiler generated dependencies file for hpc_market.
# This may be replaced when dependencies are built.
