file(REMOVE_RECURSE
  "libhpc_market.a"
)
