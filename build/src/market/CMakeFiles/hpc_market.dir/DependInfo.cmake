
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/agents.cpp" "src/market/CMakeFiles/hpc_market.dir/agents.cpp.o" "gcc" "src/market/CMakeFiles/hpc_market.dir/agents.cpp.o.d"
  "/root/repo/src/market/exchange.cpp" "src/market/CMakeFiles/hpc_market.dir/exchange.cpp.o" "gcc" "src/market/CMakeFiles/hpc_market.dir/exchange.cpp.o.d"
  "/root/repo/src/market/forwards.cpp" "src/market/CMakeFiles/hpc_market.dir/forwards.cpp.o" "gcc" "src/market/CMakeFiles/hpc_market.dir/forwards.cpp.o.d"
  "/root/repo/src/market/orderbook.cpp" "src/market/CMakeFiles/hpc_market.dir/orderbook.cpp.o" "gcc" "src/market/CMakeFiles/hpc_market.dir/orderbook.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
