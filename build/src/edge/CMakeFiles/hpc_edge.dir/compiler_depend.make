# Empty compiler generated dependencies file for hpc_edge.
# This may be replaced when dependencies are built.
