file(REMOVE_RECURSE
  "CMakeFiles/hpc_edge.dir/control.cpp.o"
  "CMakeFiles/hpc_edge.dir/control.cpp.o.d"
  "CMakeFiles/hpc_edge.dir/instrument.cpp.o"
  "CMakeFiles/hpc_edge.dir/instrument.cpp.o.d"
  "CMakeFiles/hpc_edge.dir/pipeline.cpp.o"
  "CMakeFiles/hpc_edge.dir/pipeline.cpp.o.d"
  "CMakeFiles/hpc_edge.dir/stream_sim.cpp.o"
  "CMakeFiles/hpc_edge.dir/stream_sim.cpp.o.d"
  "libhpc_edge.a"
  "libhpc_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
