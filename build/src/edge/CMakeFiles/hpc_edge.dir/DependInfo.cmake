
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/control.cpp" "src/edge/CMakeFiles/hpc_edge.dir/control.cpp.o" "gcc" "src/edge/CMakeFiles/hpc_edge.dir/control.cpp.o.d"
  "/root/repo/src/edge/instrument.cpp" "src/edge/CMakeFiles/hpc_edge.dir/instrument.cpp.o" "gcc" "src/edge/CMakeFiles/hpc_edge.dir/instrument.cpp.o.d"
  "/root/repo/src/edge/pipeline.cpp" "src/edge/CMakeFiles/hpc_edge.dir/pipeline.cpp.o" "gcc" "src/edge/CMakeFiles/hpc_edge.dir/pipeline.cpp.o.d"
  "/root/repo/src/edge/stream_sim.cpp" "src/edge/CMakeFiles/hpc_edge.dir/stream_sim.cpp.o" "gcc" "src/edge/CMakeFiles/hpc_edge.dir/stream_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hpc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ai/CMakeFiles/hpc_ai.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
