file(REMOVE_RECURSE
  "libhpc_edge.a"
)
