file(REMOVE_RECURSE
  "CMakeFiles/hpc_hw.dir/analog.cpp.o"
  "CMakeFiles/hpc_hw.dir/analog.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/catalog.cpp.o"
  "CMakeFiles/hpc_hw.dir/catalog.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/conformance.cpp.o"
  "CMakeFiles/hpc_hw.dir/conformance.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/device.cpp.o"
  "CMakeFiles/hpc_hw.dir/device.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/facility.cpp.o"
  "CMakeFiles/hpc_hw.dir/facility.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/kernel.cpp.o"
  "CMakeFiles/hpc_hw.dir/kernel.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/platform.cpp.o"
  "CMakeFiles/hpc_hw.dir/platform.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/precision.cpp.o"
  "CMakeFiles/hpc_hw.dir/precision.cpp.o.d"
  "CMakeFiles/hpc_hw.dir/scaling.cpp.o"
  "CMakeFiles/hpc_hw.dir/scaling.cpp.o.d"
  "libhpc_hw.a"
  "libhpc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
