
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/analog.cpp" "src/hw/CMakeFiles/hpc_hw.dir/analog.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/analog.cpp.o.d"
  "/root/repo/src/hw/catalog.cpp" "src/hw/CMakeFiles/hpc_hw.dir/catalog.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/catalog.cpp.o.d"
  "/root/repo/src/hw/conformance.cpp" "src/hw/CMakeFiles/hpc_hw.dir/conformance.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/conformance.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/hpc_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/facility.cpp" "src/hw/CMakeFiles/hpc_hw.dir/facility.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/facility.cpp.o.d"
  "/root/repo/src/hw/kernel.cpp" "src/hw/CMakeFiles/hpc_hw.dir/kernel.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/kernel.cpp.o.d"
  "/root/repo/src/hw/platform.cpp" "src/hw/CMakeFiles/hpc_hw.dir/platform.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/platform.cpp.o.d"
  "/root/repo/src/hw/precision.cpp" "src/hw/CMakeFiles/hpc_hw.dir/precision.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/precision.cpp.o.d"
  "/root/repo/src/hw/scaling.cpp" "src/hw/CMakeFiles/hpc_hw.dir/scaling.cpp.o" "gcc" "src/hw/CMakeFiles/hpc_hw.dir/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
