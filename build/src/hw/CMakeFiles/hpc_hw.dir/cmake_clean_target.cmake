file(REMOVE_RECURSE
  "libhpc_hw.a"
)
