# Empty compiler generated dependencies file for hpc_hw.
# This may be replaced when dependencies are built.
