# Empty compiler generated dependencies file for test_ai_explain.
# This may be replaced when dependencies are built.
