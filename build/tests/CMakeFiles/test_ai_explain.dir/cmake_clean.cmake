file(REMOVE_RECURSE
  "CMakeFiles/test_ai_explain.dir/test_ai_explain.cpp.o"
  "CMakeFiles/test_ai_explain.dir/test_ai_explain.cpp.o.d"
  "test_ai_explain"
  "test_ai_explain.pdb"
  "test_ai_explain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
