file(REMOVE_RECURSE
  "CMakeFiles/test_fed_noise.dir/test_fed_noise.cpp.o"
  "CMakeFiles/test_fed_noise.dir/test_fed_noise.cpp.o.d"
  "test_fed_noise"
  "test_fed_noise.pdb"
  "test_fed_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fed_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
