# Empty dependencies file for test_fed_noise.
# This may be replaced when dependencies are built.
