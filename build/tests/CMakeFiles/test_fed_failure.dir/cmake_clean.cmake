file(REMOVE_RECURSE
  "CMakeFiles/test_fed_failure.dir/test_fed_failure.cpp.o"
  "CMakeFiles/test_fed_failure.dir/test_fed_failure.cpp.o.d"
  "test_fed_failure"
  "test_fed_failure.pdb"
  "test_fed_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fed_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
