# Empty compiler generated dependencies file for test_fed_failure.
# This may be replaced when dependencies are built.
