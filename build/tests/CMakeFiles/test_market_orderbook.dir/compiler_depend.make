# Empty compiler generated dependencies file for test_market_orderbook.
# This may be replaced when dependencies are built.
