file(REMOVE_RECURSE
  "CMakeFiles/test_market_orderbook.dir/test_market_orderbook.cpp.o"
  "CMakeFiles/test_market_orderbook.dir/test_market_orderbook.cpp.o.d"
  "test_market_orderbook"
  "test_market_orderbook.pdb"
  "test_market_orderbook[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market_orderbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
