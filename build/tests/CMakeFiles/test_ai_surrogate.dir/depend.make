# Empty dependencies file for test_ai_surrogate.
# This may be replaced when dependencies are built.
