file(REMOVE_RECURSE
  "CMakeFiles/test_ai_surrogate.dir/test_ai_surrogate.cpp.o"
  "CMakeFiles/test_ai_surrogate.dir/test_ai_surrogate.cpp.o.d"
  "test_ai_surrogate"
  "test_ai_surrogate.pdb"
  "test_ai_surrogate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
