file(REMOVE_RECURSE
  "CMakeFiles/test_net_collectives.dir/test_net_collectives.cpp.o"
  "CMakeFiles/test_net_collectives.dir/test_net_collectives.cpp.o.d"
  "test_net_collectives"
  "test_net_collectives.pdb"
  "test_net_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
