# Empty dependencies file for test_net_collectives.
# This may be replaced when dependencies are built.
