file(REMOVE_RECURSE
  "CMakeFiles/test_hw_kernel.dir/test_hw_kernel.cpp.o"
  "CMakeFiles/test_hw_kernel.dir/test_hw_kernel.cpp.o.d"
  "test_hw_kernel"
  "test_hw_kernel.pdb"
  "test_hw_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
