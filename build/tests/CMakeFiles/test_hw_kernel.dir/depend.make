# Empty dependencies file for test_hw_kernel.
# This may be replaced when dependencies are built.
