file(REMOVE_RECURSE
  "CMakeFiles/test_hw_analog.dir/test_hw_analog.cpp.o"
  "CMakeFiles/test_hw_analog.dir/test_hw_analog.cpp.o.d"
  "test_hw_analog"
  "test_hw_analog.pdb"
  "test_hw_analog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
