# Empty dependencies file for test_hw_analog.
# This may be replaced when dependencies are built.
