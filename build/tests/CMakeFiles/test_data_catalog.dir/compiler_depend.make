# Empty compiler generated dependencies file for test_data_catalog.
# This may be replaced when dependencies are built.
