file(REMOVE_RECURSE
  "CMakeFiles/test_data_catalog.dir/test_data_catalog.cpp.o"
  "CMakeFiles/test_data_catalog.dir/test_data_catalog.cpp.o.d"
  "test_data_catalog"
  "test_data_catalog.pdb"
  "test_data_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
