file(REMOVE_RECURSE
  "CMakeFiles/test_net_flowsim.dir/test_net_flowsim.cpp.o"
  "CMakeFiles/test_net_flowsim.dir/test_net_flowsim.cpp.o.d"
  "test_net_flowsim"
  "test_net_flowsim.pdb"
  "test_net_flowsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
