# Empty compiler generated dependencies file for test_net_flowsim.
# This may be replaced when dependencies are built.
