file(REMOVE_RECURSE
  "CMakeFiles/test_hw_facility.dir/test_hw_facility.cpp.o"
  "CMakeFiles/test_hw_facility.dir/test_hw_facility.cpp.o.d"
  "test_hw_facility"
  "test_hw_facility.pdb"
  "test_hw_facility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
