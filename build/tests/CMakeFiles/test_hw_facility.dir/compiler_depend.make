# Empty compiler generated dependencies file for test_hw_facility.
# This may be replaced when dependencies are built.
