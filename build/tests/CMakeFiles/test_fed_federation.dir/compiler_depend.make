# Empty compiler generated dependencies file for test_fed_federation.
# This may be replaced when dependencies are built.
