file(REMOVE_RECURSE
  "CMakeFiles/test_fed_federation.dir/test_fed_federation.cpp.o"
  "CMakeFiles/test_fed_federation.dir/test_fed_federation.cpp.o.d"
  "test_fed_federation"
  "test_fed_federation.pdb"
  "test_fed_federation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fed_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
