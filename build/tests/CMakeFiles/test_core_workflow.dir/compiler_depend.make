# Empty compiler generated dependencies file for test_core_workflow.
# This may be replaced when dependencies are built.
