file(REMOVE_RECURSE
  "CMakeFiles/test_hw_platform.dir/test_hw_platform.cpp.o"
  "CMakeFiles/test_hw_platform.dir/test_hw_platform.cpp.o.d"
  "test_hw_platform"
  "test_hw_platform.pdb"
  "test_hw_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
