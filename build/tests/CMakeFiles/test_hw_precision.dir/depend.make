# Empty dependencies file for test_hw_precision.
# This may be replaced when dependencies are built.
