file(REMOVE_RECURSE
  "CMakeFiles/test_hw_precision.dir/test_hw_precision.cpp.o"
  "CMakeFiles/test_hw_precision.dir/test_hw_precision.cpp.o.d"
  "test_hw_precision"
  "test_hw_precision.pdb"
  "test_hw_precision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
