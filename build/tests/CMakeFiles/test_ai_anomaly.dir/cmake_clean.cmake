file(REMOVE_RECURSE
  "CMakeFiles/test_ai_anomaly.dir/test_ai_anomaly.cpp.o"
  "CMakeFiles/test_ai_anomaly.dir/test_ai_anomaly.cpp.o.d"
  "test_ai_anomaly"
  "test_ai_anomaly.pdb"
  "test_ai_anomaly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
