file(REMOVE_RECURSE
  "CMakeFiles/test_ai_mlp.dir/test_ai_mlp.cpp.o"
  "CMakeFiles/test_ai_mlp.dir/test_ai_mlp.cpp.o.d"
  "test_ai_mlp"
  "test_ai_mlp.pdb"
  "test_ai_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
