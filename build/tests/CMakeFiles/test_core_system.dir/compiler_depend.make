# Empty compiler generated dependencies file for test_core_system.
# This may be replaced when dependencies are built.
