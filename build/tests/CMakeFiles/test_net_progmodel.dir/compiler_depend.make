# Empty compiler generated dependencies file for test_net_progmodel.
# This may be replaced when dependencies are built.
