file(REMOVE_RECURSE
  "CMakeFiles/test_net_progmodel.dir/test_net_progmodel.cpp.o"
  "CMakeFiles/test_net_progmodel.dir/test_net_progmodel.cpp.o.d"
  "test_net_progmodel"
  "test_net_progmodel.pdb"
  "test_net_progmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_progmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
