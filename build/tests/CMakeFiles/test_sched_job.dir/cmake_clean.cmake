file(REMOVE_RECURSE
  "CMakeFiles/test_sched_job.dir/test_sched_job.cpp.o"
  "CMakeFiles/test_sched_job.dir/test_sched_job.cpp.o.d"
  "test_sched_job"
  "test_sched_job.pdb"
  "test_sched_job[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
