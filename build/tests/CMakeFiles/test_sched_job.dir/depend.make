# Empty dependencies file for test_sched_job.
# This may be replaced when dependencies are built.
