file(REMOVE_RECURSE
  "CMakeFiles/test_hw_conformance.dir/test_hw_conformance.cpp.o"
  "CMakeFiles/test_hw_conformance.dir/test_hw_conformance.cpp.o.d"
  "test_hw_conformance"
  "test_hw_conformance.pdb"
  "test_hw_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
