file(REMOVE_RECURSE
  "CMakeFiles/test_sched_scheduler.dir/test_sched_scheduler.cpp.o"
  "CMakeFiles/test_sched_scheduler.dir/test_sched_scheduler.cpp.o.d"
  "test_sched_scheduler"
  "test_sched_scheduler.pdb"
  "test_sched_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
