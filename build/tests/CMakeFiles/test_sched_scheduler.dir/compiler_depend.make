# Empty compiler generated dependencies file for test_sched_scheduler.
# This may be replaced when dependencies are built.
