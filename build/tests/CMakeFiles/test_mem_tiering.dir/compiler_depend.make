# Empty compiler generated dependencies file for test_mem_tiering.
# This may be replaced when dependencies are built.
