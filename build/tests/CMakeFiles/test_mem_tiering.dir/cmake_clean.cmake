file(REMOVE_RECURSE
  "CMakeFiles/test_mem_tiering.dir/test_mem_tiering.cpp.o"
  "CMakeFiles/test_mem_tiering.dir/test_mem_tiering.cpp.o.d"
  "test_mem_tiering"
  "test_mem_tiering.pdb"
  "test_mem_tiering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
