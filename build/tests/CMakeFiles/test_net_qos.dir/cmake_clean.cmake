file(REMOVE_RECURSE
  "CMakeFiles/test_net_qos.dir/test_net_qos.cpp.o"
  "CMakeFiles/test_net_qos.dir/test_net_qos.cpp.o.d"
  "test_net_qos"
  "test_net_qos.pdb"
  "test_net_qos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
