# Empty dependencies file for test_net_qos.
# This may be replaced when dependencies are built.
