# Empty dependencies file for test_market_forwards.
# This may be replaced when dependencies are built.
