file(REMOVE_RECURSE
  "CMakeFiles/test_market_forwards.dir/test_market_forwards.cpp.o"
  "CMakeFiles/test_market_forwards.dir/test_market_forwards.cpp.o.d"
  "test_market_forwards"
  "test_market_forwards.pdb"
  "test_market_forwards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market_forwards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
