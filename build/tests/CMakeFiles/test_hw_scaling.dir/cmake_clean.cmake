file(REMOVE_RECURSE
  "CMakeFiles/test_hw_scaling.dir/test_hw_scaling.cpp.o"
  "CMakeFiles/test_hw_scaling.dir/test_hw_scaling.cpp.o.d"
  "test_hw_scaling"
  "test_hw_scaling.pdb"
  "test_hw_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
