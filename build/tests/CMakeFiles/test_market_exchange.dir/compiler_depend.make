# Empty compiler generated dependencies file for test_market_exchange.
# This may be replaced when dependencies are built.
