file(REMOVE_RECURSE
  "CMakeFiles/test_market_exchange.dir/test_market_exchange.cpp.o"
  "CMakeFiles/test_market_exchange.dir/test_market_exchange.cpp.o.d"
  "test_market_exchange"
  "test_market_exchange.pdb"
  "test_market_exchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
