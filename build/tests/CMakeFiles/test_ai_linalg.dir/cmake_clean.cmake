file(REMOVE_RECURSE
  "CMakeFiles/test_ai_linalg.dir/test_ai_linalg.cpp.o"
  "CMakeFiles/test_ai_linalg.dir/test_ai_linalg.cpp.o.d"
  "test_ai_linalg"
  "test_ai_linalg.pdb"
  "test_ai_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
