# Empty dependencies file for test_hw_device.
# This may be replaced when dependencies are built.
