file(REMOVE_RECURSE
  "CMakeFiles/test_hw_device.dir/test_hw_device.cpp.o"
  "CMakeFiles/test_hw_device.dir/test_hw_device.cpp.o.d"
  "test_hw_device"
  "test_hw_device.pdb"
  "test_hw_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
