file(REMOVE_RECURSE
  "CMakeFiles/test_ai_synthetic.dir/test_ai_synthetic.cpp.o"
  "CMakeFiles/test_ai_synthetic.dir/test_ai_synthetic.cpp.o.d"
  "test_ai_synthetic"
  "test_ai_synthetic.pdb"
  "test_ai_synthetic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
