# Empty dependencies file for test_ai_synthetic.
# This may be replaced when dependencies are built.
