file(REMOVE_RECURSE
  "CMakeFiles/test_edge_stream.dir/test_edge_stream.cpp.o"
  "CMakeFiles/test_edge_stream.dir/test_edge_stream.cpp.o.d"
  "test_edge_stream"
  "test_edge_stream.pdb"
  "test_edge_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
