# Empty dependencies file for test_edge_stream.
# This may be replaced when dependencies are built.
