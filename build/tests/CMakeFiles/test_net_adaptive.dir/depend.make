# Empty dependencies file for test_net_adaptive.
# This may be replaced when dependencies are built.
