file(REMOVE_RECURSE
  "CMakeFiles/test_net_adaptive.dir/test_net_adaptive.cpp.o"
  "CMakeFiles/test_net_adaptive.dir/test_net_adaptive.cpp.o.d"
  "test_net_adaptive"
  "test_net_adaptive.pdb"
  "test_net_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
