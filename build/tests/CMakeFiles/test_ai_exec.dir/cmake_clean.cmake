file(REMOVE_RECURSE
  "CMakeFiles/test_ai_exec.dir/test_ai_exec.cpp.o"
  "CMakeFiles/test_ai_exec.dir/test_ai_exec.cpp.o.d"
  "test_ai_exec"
  "test_ai_exec.pdb"
  "test_ai_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ai_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
