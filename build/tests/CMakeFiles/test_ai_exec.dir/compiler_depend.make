# Empty compiler generated dependencies file for test_ai_exec.
# This may be replaced when dependencies are built.
