# Empty dependencies file for test_core_datart.
# This may be replaced when dependencies are built.
