file(REMOVE_RECURSE
  "CMakeFiles/test_core_datart.dir/test_core_datart.cpp.o"
  "CMakeFiles/test_core_datart.dir/test_core_datart.cpp.o.d"
  "test_core_datart"
  "test_core_datart.pdb"
  "test_core_datart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_datart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
