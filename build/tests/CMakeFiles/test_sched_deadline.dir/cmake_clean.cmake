file(REMOVE_RECURSE
  "CMakeFiles/test_sched_deadline.dir/test_sched_deadline.cpp.o"
  "CMakeFiles/test_sched_deadline.dir/test_sched_deadline.cpp.o.d"
  "test_sched_deadline"
  "test_sched_deadline.pdb"
  "test_sched_deadline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
