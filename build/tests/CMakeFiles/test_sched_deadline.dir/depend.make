# Empty dependencies file for test_sched_deadline.
# This may be replaced when dependencies are built.
