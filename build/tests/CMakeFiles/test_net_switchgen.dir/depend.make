# Empty dependencies file for test_net_switchgen.
# This may be replaced when dependencies are built.
