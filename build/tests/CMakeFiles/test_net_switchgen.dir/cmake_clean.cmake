file(REMOVE_RECURSE
  "CMakeFiles/test_net_switchgen.dir/test_net_switchgen.cpp.o"
  "CMakeFiles/test_net_switchgen.dir/test_net_switchgen.cpp.o.d"
  "test_net_switchgen"
  "test_net_switchgen.pdb"
  "test_net_switchgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_switchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
