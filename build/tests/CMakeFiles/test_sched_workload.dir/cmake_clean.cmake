file(REMOVE_RECURSE
  "CMakeFiles/test_sched_workload.dir/test_sched_workload.cpp.o"
  "CMakeFiles/test_sched_workload.dir/test_sched_workload.cpp.o.d"
  "test_sched_workload"
  "test_sched_workload.pdb"
  "test_sched_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
