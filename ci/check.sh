#!/usr/bin/env bash
# Full local CI gate: tier-1 build+tests, the archlint determinism-contract
# scan, a -Werror warning wall, an ASan+UBSan instrumented test pass, and a
# perf smoke run that emits the BENCH_flowsim.json trajectory artifact.
# Run from the repository root:  ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/5] tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== [2/5] archlint: determinism-contract static analysis =="
./build/tools/archlint/archlint --root . src tests bench examples tools/benchjson

echo "== [3/5] warning wall: -Wall -Wextra -Werror =="
cmake -B build-werror -S . -DARCHIPELAGO_WERROR=ON >/dev/null
cmake --build build-werror -j "${JOBS}"

echo "== [4/5] sanitizers: ASan+UBSan instrumented test suite =="
cmake -B build-asan -S . -DARCHIPELAGO_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== [5/5] perf smoke: flowsim hot-path benchmark trajectory =="
# Short-run smoke (not a statistically stable measurement): proves the
# benchmark binary works end to end and regenerates BENCH_flowsim.json.
# Note: this google-benchmark takes a bare double (no "s" suffix).
BENCHJSON_OUT=BENCH_flowsim.json ./build/bench/bench_perf_flowsim \
  --benchmark_min_time=0.05
./build/tools/benchjson/benchjson_check BENCH_flowsim.json

echo "All checks passed."
