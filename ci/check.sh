#!/usr/bin/env bash
# Full local CI gate: tier-1 build+tests, the archlint determinism-contract
# scan, a -Werror warning wall, and an ASan+UBSan instrumented test pass.
# Run from the repository root:  ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/4] tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== [2/4] archlint: determinism-contract static analysis =="
./build/tools/archlint/archlint --root . src tests bench examples

echo "== [3/4] warning wall: -Wall -Wextra -Werror =="
cmake -B build-werror -S . -DARCHIPELAGO_WERROR=ON >/dev/null
cmake --build build-werror -j "${JOBS}"

echo "== [4/4] sanitizers: ASan+UBSan instrumented test suite =="
cmake -B build-asan -S . -DARCHIPELAGO_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "All checks passed."
