#!/usr/bin/env bash
# Full local CI gate: tier-1 build+tests, the archlint determinism-contract
# scan, a -Werror warning wall, an ASan+UBSan instrumented test pass, a perf
# smoke run that emits the BENCH_flowsim.json / BENCH_obs.json trajectory
# artifacts, an observability stage that validates an instrumented run's
# trace with tools/tracecat, and a co-simulation stage that pins the coupled
# scenario's engine digest.
# Run from the repository root:  ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/7] tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== [2/7] archlint: determinism-contract static analysis (v2) =="
# Token-stream rules D1-D5/D8/D9 plus the include-graph passes (D6 layering
# against tools/archlint/layers.txt, D7 cycles), machine-readable output,
# and a SARIF artifact for upload.  The committed baseline is a ratchet:
# it may only ever be empty or shrink.
LINT_DIR=build/archlint-ci
mkdir -p "${LINT_DIR}"
./build/tools/archlint/archlint --root . \
  --layers tools/archlint/layers.txt \
  --baseline tools/archlint/baseline.txt \
  --format json --output "${LINT_DIR}/findings.json" \
  src tests bench examples tools
./build/tools/archlint/archlint --root . \
  --layers tools/archlint/layers.txt \
  --format sarif --output "${LINT_DIR}/findings.sarif" --check-sarif \
  src tests bench examples tools
# Baseline ratchet: if the committed baseline still lists findings, a run
# that fails to retire at least one entry means the debt is not shrinking.
BASELINE=tools/archlint/baseline.txt
if grep -vq '^\s*\(#\|$\)' "${BASELINE}"; then
  ./build/tools/archlint/archlint --root . \
    --layers tools/archlint/layers.txt \
    --write-baseline "${LINT_DIR}/baseline.regen" \
    src tests bench examples tools 2>/dev/null
  if diff -q <(grep -v '^#' "${BASELINE}") \
             <(grep -v '^#' "${LINT_DIR}/baseline.regen") >/dev/null; then
    echo "archlint: baseline ${BASELINE} is non-empty and did not shrink" >&2
    echo "archlint: retire at least one entry (fix the finding) per change" >&2
    exit 1
  fi
fi
echo "archlint: SARIF artifact at ${LINT_DIR}/findings.sarif"

echo "== [3/7] warning wall: -Wall -Wextra -Werror =="
cmake -B build-werror -S . -DARCHIPELAGO_WERROR=ON >/dev/null
cmake --build build-werror -j "${JOBS}"

echo "== [4/7] sanitizers: ASan+UBSan instrumented test suite =="
cmake -B build-asan -S . -DARCHIPELAGO_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== [5/7] perf smoke: flowsim + observability overhead trajectories =="
# Short-run smoke (not a statistically stable measurement): proves the
# benchmark binaries work end to end and regenerates the BENCH_*.json
# artifacts.  Note: these google-benchmarks take a bare double (no "s"
# suffix).
BENCHJSON_OUT=BENCH_flowsim.json ./build/bench/bench_perf_flowsim \
  --benchmark_min_time=0.05
./build/tools/benchjson/benchjson_check BENCH_flowsim.json
BENCHJSON_OUT=BENCH_obs.json ./build/bench/bench_perf_obs \
  --benchmark_min_time=0.05
./build/tools/benchjson/benchjson_check BENCH_obs.json

echo "== [6/7] obs: instrumented run + tracecat artifact validation =="
# Run the instrumented quickstart, then hold its exported artifacts to the
# exporter's invariants: well-formed strict JSON, balanced spans, a valid
# metrics snapshot.  Any violation is a hard failure.
OBS_DIR=build/obs-ci
mkdir -p "${OBS_DIR}"
./build/examples/quickstart "${OBS_DIR}/trace.json" "${OBS_DIR}/metrics.json" >/dev/null
./build/tools/tracecat/tracecat --check --metrics "${OBS_DIR}/metrics.json" \
  "${OBS_DIR}/trace.json"
./build/tools/tracecat/tracecat --top 5 "${OBS_DIR}/trace.json"

echo "== [7/7] co-sim: coupled scenario determinism gate =="
# Run the coupled archipelago example (jobs -> flows -> market clearing on
# one sim::Engine), validate its flight-recorder artifacts, and hold the
# engine's event digest to the committed expectation: any nondeterminism or
# unreviewed behavior change in the coupled event stream fails CI.  After an
# intentional change, regenerate with:
#   ./build/examples/coupled_archipelago | grep '^engine digest:' \
#     > ci/expected_coupled_digest.txt
COSIM_DIR=build/cosim-ci
mkdir -p "${COSIM_DIR}"
./build/examples/coupled_archipelago "${COSIM_DIR}/trace.json" \
  "${COSIM_DIR}/metrics.json" > "${COSIM_DIR}/stdout.txt"
./build/tools/tracecat/tracecat --check --metrics "${COSIM_DIR}/metrics.json" \
  "${COSIM_DIR}/trace.json"
grep '^engine digest:' "${COSIM_DIR}/stdout.txt" > "${COSIM_DIR}/digest.txt"
if ! diff -u ci/expected_coupled_digest.txt "${COSIM_DIR}/digest.txt"; then
  echo "co-sim: engine digest drifted from ci/expected_coupled_digest.txt" >&2
  exit 1
fi
echo "co-sim: digest matches $(cat "${COSIM_DIR}/digest.txt")"

echo "All checks passed."
