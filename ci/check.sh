#!/usr/bin/env bash
# Full local CI gate: tier-1 build+tests, the archlint determinism-contract
# scan, a -Werror warning wall, an ASan+UBSan instrumented test pass, a perf
# smoke run that emits the BENCH_flowsim.json / BENCH_obs.json /
# BENCH_campaign.json trajectory artifacts, an observability stage that
# validates an instrumented run's trace with tools/tracecat, a co-simulation
# stage that pins the coupled scenario's engine digest, and a campaign stage
# that runs the same sweep under two execution policies and byte-diffs every
# aggregate artifact.
# Run from the repository root:  ./ci/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== [1/8] tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== [2/8] archlint: determinism-contract static analysis (v3) =="
# Token-stream rules D1-D5/D8/D9, the include-graph passes (D6 layering
# against tools/archlint/layers.txt, D7 cycles), and the cross-TU semantic
# pass (D10-D14, allowlists in tools/archlint/semantics.txt which the
# scanner discovers automatically under --root).  Machine-readable output
# plus a SARIF artifact for upload.
LINT_DIR=build/archlint-ci
mkdir -p "${LINT_DIR}"
./build/tools/archlint/archlint --root . --jobs "${JOBS}" \
  --layers tools/archlint/layers.txt \
  --baseline tools/archlint/baseline.txt \
  --format json --output "${LINT_DIR}/findings.json" \
  src tests bench examples tools
./build/tools/archlint/archlint --root . --jobs "${JOBS}" \
  --layers tools/archlint/layers.txt \
  --baseline tools/archlint/baseline.txt \
  --format sarif --output "${LINT_DIR}/findings.sarif" --check-sarif \
  src tests bench examples tools

# SARIF rule metadata is a published contract: the driver's rule table must
# match ci/expected_sarif_rules.txt exactly.  A new rule lands by updating
# the committed list in the same change.
grep -o '"id": "[a-z-]*"' "${LINT_DIR}/findings.sarif" \
  | sed 's/.*"id": "\(.*\)"/\1/' | sort -u > "${LINT_DIR}/sarif_rules.txt"
if ! diff -u ci/expected_sarif_rules.txt "${LINT_DIR}/sarif_rules.txt"; then
  echo "archlint: SARIF rule metadata drifted from ci/expected_sarif_rules.txt" >&2
  echo "archlint: new rules must update the committed list in the same change" >&2
  exit 1
fi

# Baseline ratchet, HEAD-relative: a brand-new rule may land with its initial
# debt baselined (that is how dead-public-api ratchets in), but for any rule
# that already existed at HEAD (listed in HEAD's ci/expected_sarif_rules.txt)
# the baseline may only shrink — no new entries.  Stale entries (suppressions
# that no longer match a live finding) are forbidden outright.
BASELINE=tools/archlint/baseline.txt
./build/tools/archlint/archlint --root . --jobs "${JOBS}" \
  --layers tools/archlint/layers.txt \
  --write-baseline "${LINT_DIR}/baseline.regen" \
  src tests bench examples tools 2>/dev/null
grep -v '^\s*\(#\|$\)' "${BASELINE}" | sort > "${LINT_DIR}/baseline.flat" || true
grep -v '^\s*\(#\|$\)' "${LINT_DIR}/baseline.regen" | sort > "${LINT_DIR}/regen.flat" || true
STALE="$(comm -23 "${LINT_DIR}/baseline.flat" "${LINT_DIR}/regen.flat")"
if [ -n "${STALE}" ]; then
  echo "archlint: stale baseline entries (no matching finding) — delete them:" >&2
  echo "${STALE}" >&2
  exit 1
fi
if git cat-file -e HEAD:ci/expected_sarif_rules.txt 2>/dev/null; then
  git show HEAD:ci/expected_sarif_rules.txt > "${LINT_DIR}/head_rules.txt"
  if git cat-file -e "HEAD:${BASELINE}" 2>/dev/null; then
    git show "HEAD:${BASELINE}" | grep -v '^\s*\(#\|$\)' | sort \
      > "${LINT_DIR}/head_baseline.flat" || true
  else
    : > "${LINT_DIR}/head_baseline.flat"
  fi
  comm -23 "${LINT_DIR}/baseline.flat" "${LINT_DIR}/head_baseline.flat" \
    > "${LINT_DIR}/baseline.new"
  NEW_DEBT="$(cut -f1 "${LINT_DIR}/baseline.new" | sort -u \
    | grep -Fx -f "${LINT_DIR}/head_rules.txt" || true)"
  if [ -n "${NEW_DEBT}" ]; then
    echo "archlint: baseline grew for rules that already existed at HEAD:" >&2
    echo "${NEW_DEBT}" >&2
    echo "archlint: fix the findings instead of baselining them" >&2
    exit 1
  fi
fi
echo "archlint: SARIF artifact at ${LINT_DIR}/findings.sarif"

echo "== [3/8] warning wall: -Wall -Wextra -Werror =="
cmake -B build-werror -S . -DARCHIPELAGO_WERROR=ON >/dev/null
cmake --build build-werror -j "${JOBS}"

echo "== [4/8] sanitizers: ASan+UBSan instrumented test suite =="
cmake -B build-asan -S . -DARCHIPELAGO_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "== [5/8] perf smoke: flowsim + obs + campaign trajectories =="
# flowsim: short-run smoke (not a statistically stable measurement) — proves
# the binary works end to end.  The slow none_minimal rows are pinned to 3
# fixed iterations in the binary itself, so every row clears the default
# min-iters 3 gate — the old --min-iters 1 opt-out is gone.
# Note: these google-benchmarks take a bare double (no "s" suffix).
BENCHJSON_OUT=BENCH_flowsim.json ./build/bench/bench_perf_flowsim \
  --benchmark_min_time=0.05
./build/tools/benchjson/benchjson_check BENCH_flowsim.json
# obs: the overhead baseline people actually quote, so it runs its built-in
# fixed 5 iterations + warmup (no min_time override) and must satisfy the
# default min-iters 3 gate.
BENCHJSON_OUT=BENCH_obs.json ./build/bench/bench_perf_obs
./build/tools/benchjson/benchjson_check BENCH_obs.json
# campaign: replicas/sec serial vs thread-pool (fixed 3 iterations per row);
# the binary also cross-checks that serial and 4-thread campaigns produce
# byte-identical artifacts before it will emit a baseline.
BENCHJSON_OUT=BENCH_campaign.json ./build/bench/bench_perf_campaign
./build/tools/benchjson/benchjson_check BENCH_campaign.json

echo "== [6/8] obs: instrumented run + tracecat artifact validation =="
# Run the instrumented quickstart, then hold its exported artifacts to the
# exporter's invariants: well-formed strict JSON, balanced spans, a valid
# metrics snapshot.  Any violation is a hard failure.
OBS_DIR=build/obs-ci
mkdir -p "${OBS_DIR}"
./build/examples/quickstart "${OBS_DIR}/trace.json" "${OBS_DIR}/metrics.json" >/dev/null
./build/tools/tracecat/tracecat --check --metrics "${OBS_DIR}/metrics.json" \
  "${OBS_DIR}/trace.json"
./build/tools/tracecat/tracecat --top 5 "${OBS_DIR}/trace.json"

echo "== [7/8] co-sim: coupled scenario determinism gate =="
# Run the coupled archipelago example (jobs -> flows -> market clearing on
# one sim::Engine), validate its flight-recorder artifacts, and hold the
# engine's event digest to the committed expectation: any nondeterminism or
# unreviewed behavior change in the coupled event stream fails CI.  After an
# intentional change, regenerate with:
#   ./build/examples/coupled_archipelago | grep '^engine digest:' \
#     > ci/expected_coupled_digest.txt
COSIM_DIR=build/cosim-ci
mkdir -p "${COSIM_DIR}"
./build/examples/coupled_archipelago "${COSIM_DIR}/trace.json" \
  "${COSIM_DIR}/metrics.json" > "${COSIM_DIR}/stdout.txt"
./build/tools/tracecat/tracecat --check --metrics "${COSIM_DIR}/metrics.json" \
  "${COSIM_DIR}/trace.json"
grep '^engine digest:' "${COSIM_DIR}/stdout.txt" > "${COSIM_DIR}/digest.txt"
if ! diff -u ci/expected_coupled_digest.txt "${COSIM_DIR}/digest.txt"; then
  echo "co-sim: engine digest drifted from ci/expected_coupled_digest.txt" >&2
  exit 1
fi
echo "co-sim: digest matches $(cat "${COSIM_DIR}/digest.txt")"

echo "== [8/8] campaign: execution-policy invariance + digest gate =="
# Run the federation sweep twice — SerialPolicy and ThreadPoolPolicy{2} —
# and require the two artifact trees to match byte for byte: per-replica
# metrics snapshots, the digest listing, the merged archipelago-metrics-v1
# aggregate, the per-cell bench aggregate, and the summary report.  Then
# hold the campaign digest to the committed expectation.  After an
# intentional scenario change, regenerate with:
#   ./build/examples/campaign_sweep 0 /tmp/campaign | grep '^campaign digest:' \
#     > ci/expected_campaign_digest.txt
CAMPAIGN_DIR=build/campaign-ci
rm -rf "${CAMPAIGN_DIR}"
mkdir -p "${CAMPAIGN_DIR}"
./build/examples/campaign_sweep 0 "${CAMPAIGN_DIR}/serial" \
  > "${CAMPAIGN_DIR}/serial.txt"
./build/examples/campaign_sweep 2 "${CAMPAIGN_DIR}/threads" \
  > "${CAMPAIGN_DIR}/threads.txt"
if ! diff -r "${CAMPAIGN_DIR}/serial" "${CAMPAIGN_DIR}/threads"; then
  echo "campaign: serial and 2-thread artifact trees differ — execution" >&2
  echo "campaign: policy leaked into results" >&2
  exit 1
fi
# The per-cell aggregate is a well-formed archipelago-bench-v1 document, and
# the new compare mode agrees the two runs match exactly (tolerance 0).
./build/tools/benchjson/benchjson_check "${CAMPAIGN_DIR}/serial/cells.json"
./build/tools/benchjson/benchjson_check --compare \
  "${CAMPAIGN_DIR}/serial/cells.json" "${CAMPAIGN_DIR}/threads/cells.json"
grep '^campaign digest:' "${CAMPAIGN_DIR}/serial/report.txt" \
  > "${CAMPAIGN_DIR}/digest.txt"
if ! diff -u ci/expected_campaign_digest.txt "${CAMPAIGN_DIR}/digest.txt"; then
  echo "campaign: digest drifted from ci/expected_campaign_digest.txt" >&2
  exit 1
fi
echo "campaign: digest matches $(cat "${CAMPAIGN_DIR}/digest.txt")"

echo "All checks passed."
